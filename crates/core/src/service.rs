//! Resident admission-control service: warm per-tenant analysis sessions.
//!
//! The analyses in this crate answer one operational question — *can this
//! shop absorb job `J` without missing deadlines?* — and production
//! admission control asks it continuously, not once per process. The
//! incremental engine ([`AnalysisSession`], ~6.5× warm vs. cold on sweeps)
//! amortizes re-analysis cost *within* one evolving system; this module
//! keeps those sessions alive *across requests*:
//!
//! * [`AdmissionService`] owns a map of named **tenants**, each a pinned
//!   [`AnalysisSession`] over that tenant's loaded system. Admission is
//!   delta-based: [`AdmissionService::admit`] pushes the candidate job into
//!   the warm session ([`AnalysisSession::add_job`]), asks the tenant's
//!   oracle, and rolls the job back ([`AnalysisSession::remove_job`]) when
//!   the verdict is a rejection — the session's dirty-cone machinery
//!   recomputes only what the candidate can influence.
//! * Sessions are **pinned** ([`AnalysisSession::pinned`]): the analysis
//!   frame is resolved once, from the loaded system, so admission deltas
//!   keep curve caches and fixpoint seeds valid. Verdicts under a pinned
//!   frame are sound (an undersized horizon reads as unschedulable) and are
//!   bit-identical to a cold analysis under the same pinned configuration —
//!   [`AdmissionService::tenant_config`] exposes that configuration so the
//!   warm/cold equivalence is testable (`tests/service_oracles.rs`).
//! * The tenant map is bounded: past [`ServiceConfig::max_tenants`] the
//!   least-recently-used tenant is evicted, so a long-running service holds
//!   a working set of warm sessions, not one per tenant ever seen.
//! * Every mutating request stamps the tenant with a **service-global,
//!   monotone generation number**. A reply carrying a generation can never
//!   be confused with a reply from before an eviction/reload or a
//!   concurrent mutation: generations never repeat, per tenant or globally.
//!
//! The service is transport-agnostic: it speaks [`TaskSystem`]/[`Job`]
//! values, never text. The umbrella crate's `daemon` module shards
//! instances of this service across the worker pool and serves the
//! line-oriented wire protocol over stdin/stdout and unix sockets.

use std::collections::HashMap;

use crate::config::AnalysisConfig;
use crate::error::AnalysisError;
use crate::sensitivity::region::{explore_region, RegionConfig, RegionReport};
use crate::sensitivity::Oracle;
use crate::session::{AnalysisSession, SessionStats};
use rta_model::{Job, JobId, TaskSystem};

/// Default bound on resident tenants.
pub const DEFAULT_MAX_TENANTS: usize = 64;

/// Default fixpoint round budget for the loop-tolerant oracle.
pub const DEFAULT_MAX_ROUNDS: usize = 8;

/// Sizing and analysis knobs of an [`AdmissionService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Analysis configuration applied to every tenant (each tenant pins its
    /// own frame from it at load time).
    pub analysis: AnalysisConfig,
    /// Resident-session cap: loading a tenant beyond this evicts the
    /// least-recently-used one. Must be ≥ 1.
    pub max_tenants: usize,
    /// Round budget handed to the loop-tolerant fixpoint oracle.
    pub max_rounds: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            analysis: AnalysisConfig::default(),
            max_tenants: DEFAULT_MAX_TENANTS,
            max_rounds: DEFAULT_MAX_ROUNDS,
        }
    }
}

/// Errors surfaced by service requests.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The named tenant has no resident session (never loaded, or evicted).
    UnknownTenant(String),
    /// A job name was not found in the tenant's current system.
    UnknownJob {
        /// Tenant the lookup ran against.
        tenant: String,
        /// The missing job name.
        job: String,
    },
    /// An admitted job with this name already exists in the tenant.
    DuplicateJob {
        /// Tenant the admission ran against.
        tenant: String,
        /// The duplicated job name.
        job: String,
    },
    /// A scale factor outside `(0, ∞)`.
    InvalidFactor(f64),
    /// The underlying analysis failed (the delta has been rolled back).
    Analysis(AnalysisError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownTenant(t) => write!(f, "unknown tenant '{t}'"),
            ServiceError::UnknownJob { tenant, job } => {
                write!(f, "tenant '{tenant}' has no job '{job}'")
            }
            ServiceError::DuplicateJob { tenant, job } => {
                write!(f, "tenant '{tenant}' already has a job '{job}'")
            }
            ServiceError::InvalidFactor(x) => {
                write!(f, "scale factor must be positive and finite, got {x}")
            }
            ServiceError::Analysis(e) => write!(f, "analysis failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<AnalysisError> for ServiceError {
    fn from(e: AnalysisError) -> Self {
        ServiceError::Analysis(e)
    }
}

/// An admission decision.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The system including the candidate is schedulable; the job stays.
    Admitted,
    /// Admission would break a deadline; the delta was rolled back.
    Rejected,
}

impl Verdict {
    /// `true` for [`Verdict::Admitted`].
    pub fn admitted(self) -> bool {
        matches!(self, Verdict::Admitted)
    }
}

/// Result of loading (or replacing) a tenant.
#[derive(Clone, Debug)]
pub struct LoadOutcome {
    /// Generation stamped on the load.
    pub generation: u64,
    /// Jobs in the loaded system.
    pub jobs: usize,
    /// Whether the loaded system is schedulable as-is.
    pub schedulable: bool,
    /// The rendered analysis report (exact for all-SPP tenants, Theorem 4
    /// bounds otherwise, the Section 6 fixed point for cyclic topologies —
    /// the same selection as a one-shot `rta-admit` run).
    pub report: String,
    /// Tenant evicted to make room, if the session cap was reached.
    pub evicted: Option<String>,
    /// The preferred oracle hit a cyclic dependency graph and the report
    /// came from the Section 6 fixed point instead (the one-shot CLI
    /// surfaces this as a diagnostic).
    pub cyclic_fallback: bool,
}

/// Result of an admission probe.
#[derive(Clone, Debug, PartialEq)]
pub struct AdmitOutcome {
    /// The decision.
    pub verdict: Verdict,
    /// Generation stamped on the probe.
    pub generation: u64,
    /// Jobs resident after the decision (candidate included iff admitted).
    pub jobs: usize,
}

/// Result of removing a job or rescaling a tenant.
#[derive(Clone, Debug, PartialEq)]
pub struct MutateOutcome {
    /// Generation stamped on the mutation.
    pub generation: u64,
    /// Jobs resident after the mutation.
    pub jobs: usize,
    /// Post-mutation schedulability (always `Some` for scaling, `None` for
    /// removals, which cannot make a schedulable system unschedulable).
    pub schedulable: Option<bool>,
}

/// Point-in-time counters of one tenant, for `STATS` replies.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantStats {
    /// Latest generation stamped on the tenant.
    pub generation: u64,
    /// Jobs currently resident.
    pub jobs: usize,
    /// The warm session's reuse counters.
    pub session: SessionStats,
    /// Distinct curves interned in the tenant's arena.
    pub interned_curves: usize,
}

struct Tenant {
    session: AnalysisSession,
    oracle: Oracle,
    generation: u64,
    last_used: u64,
}

/// A resident map of warm per-tenant [`AnalysisSession`]s answering
/// admission queries through delta analysis. See the [module docs](self).
pub struct AdmissionService {
    cfg: ServiceConfig,
    tenants: HashMap<String, Tenant>,
    /// LRU logical clock: bumped on every tenant touch.
    clock: u64,
    /// Service-global monotone generation counter (never reset, so replies
    /// from before an eviction/reload are distinguishable).
    next_gen: u64,
    evictions: u64,
}

impl AdmissionService {
    /// An empty service.
    pub fn new(cfg: ServiceConfig) -> AdmissionService {
        assert!(cfg.max_tenants >= 1, "max_tenants must be at least 1");
        AdmissionService {
            cfg,
            tenants: HashMap::new(),
            clock: 0,
            next_gen: 0,
            evictions: 0,
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Number of resident tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Tenants evicted by the LRU policy since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Whether `tenant` currently has a resident session.
    pub fn contains(&self, tenant: &str) -> bool {
        self.tenants.contains_key(tenant)
    }

    /// The tenant's current (post-delta) system, if resident.
    pub fn tenant_system(&self, tenant: &str) -> Option<&TaskSystem> {
        self.tenants.get(tenant).map(|t| t.session.system())
    }

    /// The tenant's effective analysis configuration — the service config
    /// with the session's pinned frame applied. A cold analysis under this
    /// exact configuration is the oracle for the tenant's warm verdicts.
    pub fn tenant_config(&self, tenant: &str) -> Option<AnalysisConfig> {
        self.tenants.get(tenant).map(|t| t.session.config())
    }

    /// The schedulability oracle backing the tenant's verdicts.
    pub fn tenant_oracle(&self, tenant: &str) -> Option<Oracle> {
        self.tenants.get(tenant).map(|t| t.oracle)
    }

    /// The verdict oracle the service would pick for `sys`: exact analysis
    /// when every processor's policy supports it, the loop-tolerant
    /// Section 6 fixpoint (which also covers cyclic topologies) otherwise.
    pub fn pick_oracle(sys: &TaskSystem, max_rounds: usize) -> Oracle {
        if sys
            .processors()
            .iter()
            .all(|p| crate::policy::policy_for(p.scheduler).supports_exact())
        {
            Oracle::Exact
        } else {
            Oracle::Loops { max_rounds }
        }
    }

    fn bump_gen(&mut self) -> u64 {
        self.next_gen += 1;
        self.next_gen
    }

    fn touch(clock: &mut u64, tenant: &mut Tenant) {
        *clock += 1;
        tenant.last_used = *clock;
    }

    fn tenant_mut(&mut self, name: &str) -> Result<&mut Tenant, ServiceError> {
        match self.tenants.get_mut(name) {
            Some(t) => {
                Self::touch(&mut self.clock, t);
                Ok(t)
            }
            None => Err(ServiceError::UnknownTenant(name.to_string())),
        }
    }

    /// Evict the least-recently-used tenant, returning its name.
    fn evict_lru(&mut self) -> Option<String> {
        let name = self
            .tenants
            .iter()
            .min_by_key(|(_, t)| t.last_used)
            .map(|(n, _)| n.clone())?;
        self.tenants.remove(&name);
        self.evictions += 1;
        Some(name)
    }

    /// Load (or replace) a tenant's system and run the full analysis once.
    ///
    /// The session is pinned to the frame resolved from `sys`, the verdict
    /// oracle is chosen by [`AdmissionService::pick_oracle`], and the
    /// rendered report follows the one-shot CLI's selection: exact for
    /// all-SPP systems, Theorem 4 bounds otherwise, falling back to the
    /// Section 6 fixed point on cyclic topologies. Loading past the session
    /// cap evicts the least-recently-used tenant (reported in the outcome).
    pub fn load(&mut self, tenant: &str, sys: TaskSystem) -> Result<LoadOutcome, ServiceError> {
        let mut oracle = Self::pick_oracle(&sys, self.cfg.max_rounds);
        let mut session = AnalysisSession::pinned(sys, self.cfg.analysis.clone());
        let cfg = session.config();

        let first = match oracle {
            Oracle::Exact => session
                .analyze_exact()
                .map(|r| (r.all_schedulable(), r.to_string())),
            _ => crate::bounds::analyze_bounds(session.system(), &cfg)
                .map(|r| (r.all_schedulable(), r.to_string())),
        };
        let mut cyclic_fallback = false;
        let (schedulable, report) = match first {
            Ok(out) => out,
            Err(AnalysisError::CyclicDependency { .. }) => {
                // Cyclic topology: only the Section 6 fixed point applies —
                // for the load report and for every later verdict.
                cyclic_fallback = true;
                oracle = Oracle::Loops {
                    max_rounds: self.cfg.max_rounds,
                };
                let r = session.analyze_with_loops(self.cfg.max_rounds)?;
                (r.all_schedulable(), r.to_string())
            }
            Err(e) => return Err(e.into()),
        };

        let evicted =
            if !self.tenants.contains_key(tenant) && self.tenants.len() >= self.cfg.max_tenants {
                self.evict_lru()
            } else {
                None
            };
        let generation = self.bump_gen();
        let jobs = session.system().jobs().len();
        let mut t = Tenant {
            session,
            oracle,
            generation,
            last_used: 0,
        };
        Self::touch(&mut self.clock, &mut t);
        self.tenants.insert(tenant.to_string(), t);
        Ok(LoadOutcome {
            generation,
            jobs,
            schedulable,
            report,
            evicted,
            cyclic_fallback,
        })
    }

    /// Delta-based admission probe: push `job` into the tenant's warm
    /// session, ask the tenant's oracle, and roll the job back on
    /// rejection (or on an analysis error). The candidate's name must not
    /// collide with a resident job — names are the protocol's stable job
    /// handles across the id shifts that removals cause.
    pub fn admit(&mut self, tenant: &str, job: Job) -> Result<AdmitOutcome, ServiceError> {
        let generation = self.bump_gen();
        let t = self.tenant_mut(tenant)?;
        if t.session.system().jobs().iter().any(|j| j.name == job.name) {
            return Err(ServiceError::DuplicateJob {
                tenant: tenant.to_string(),
                job: job.name,
            });
        }
        let oracle = t.oracle;
        let id = t.session.add_job(job);
        t.generation = generation;
        match t.session.schedulable(oracle) {
            Ok(true) => Ok(AdmitOutcome {
                verdict: Verdict::Admitted,
                generation,
                jobs: t.session.system().jobs().len(),
            }),
            Ok(false) => {
                t.session.remove_job(id);
                Ok(AdmitOutcome {
                    verdict: Verdict::Rejected,
                    generation,
                    jobs: t.session.system().jobs().len(),
                })
            }
            Err(e) => {
                t.session.remove_job(id);
                Err(e.into())
            }
        }
    }

    /// Remove a resident job by name.
    pub fn remove(&mut self, tenant: &str, job: &str) -> Result<MutateOutcome, ServiceError> {
        let generation = self.bump_gen();
        let t = self.tenant_mut(tenant)?;
        let Some(k) = t.session.system().jobs().iter().position(|j| j.name == job) else {
            return Err(ServiceError::UnknownJob {
                tenant: tenant.to_string(),
                job: job.to_string(),
            });
        };
        t.session.remove_job(JobId(k));
        t.generation = generation;
        Ok(MutateOutcome {
            generation,
            jobs: t.session.system().jobs().len(),
            schedulable: None,
        })
    }

    /// Rescale every execution time from the tenant's *loaded base* by
    /// `factor` (what-if probing along the sensitivity axis) and return the
    /// fresh verdict. Factors are absolute, not cumulative: `SCALE 1.0`
    /// restores the base execution times.
    pub fn scale(&mut self, tenant: &str, factor: f64) -> Result<MutateOutcome, ServiceError> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(ServiceError::InvalidFactor(factor));
        }
        let generation = self.bump_gen();
        let t = self.tenant_mut(tenant)?;
        let oracle = t.oracle;
        t.session.scale_exec(factor);
        t.generation = generation;
        let ok = t.session.schedulable(oracle)?;
        Ok(MutateOutcome {
            generation,
            jobs: t.session.system().jobs().len(),
            schedulable: Some(ok),
        })
    }

    /// Explore the (execution-scale × burst-length) schedulability region
    /// of the tenant's *current* system (read-only: the tenant's session
    /// and generation are untouched).
    pub fn region(
        &mut self,
        tenant: &str,
        scales: (f64, f64, usize),
        bursts: (u32, u32, usize),
    ) -> Result<RegionReport, ServiceError> {
        let base = self.cfg.analysis.clone();
        let max_rounds = self.cfg.max_rounds;
        let t = self.tenant_mut(tenant)?;
        let oracle = AdmissionService::pick_oracle(t.session.system(), max_rounds);
        let region = RegionConfig::grid(
            scales.0, scales.1, scales.2, bursts.0, bursts.1, bursts.2, oracle,
        );
        Ok(explore_region(t.session.system(), &base, &region)?)
    }

    /// The tenant's reuse counters and latest generation.
    pub fn stats(&mut self, tenant: &str) -> Result<TenantStats, ServiceError> {
        let t = self.tenant_mut(tenant)?;
        Ok(TenantStats {
            generation: t.generation,
            jobs: t.session.system().jobs().len(),
            session: t.session.stats(),
            interned_curves: t.session.arena_stats().curves,
        })
    }

    /// Drop a tenant's session. Returns whether it was resident. The
    /// generation counter is global and monotone, so a later re-load can
    /// never reuse a generation stamped before the eviction.
    pub fn evict(&mut self, tenant: &str) -> bool {
        self.tenants.remove(tenant).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_curves::Time;
    use rta_model::priority::{assign_priorities, PriorityPolicy};
    use rta_model::{ArrivalPattern, SchedulerKind, Subjob, SystemBuilder};

    fn periodic(p: i64) -> ArrivalPattern {
        ArrivalPattern::Periodic {
            period: Time(p),
            offset: Time::ZERO,
        }
    }

    /// Two SPP processors, two jobs, plenty of slack.
    fn base_system() -> TaskSystem {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        b.add_job(
            "T1",
            Time(80),
            periodic(40),
            vec![(p1, Time(4)), (p2, Time(6))],
        );
        b.add_job("T2", Time(90), periodic(45), vec![(p1, Time(5))]);
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        sys
    }

    /// A single-hop job for processor `proc` with the lowest priority `prio`.
    fn candidate_on(proc: usize, name: &str, exec: i64, prio: u32) -> Job {
        Job {
            name: name.to_string(),
            deadline: Time(200),
            arrival: periodic(100),
            subjobs: vec![Subjob {
                processor: rta_model::ProcessorId(proc),
                exec: Time(exec),
                priority: Some(prio),
                weight: None,
            }],
        }
    }

    fn candidate(name: &str, exec: i64, prio: u32) -> Job {
        candidate_on(0, name, exec, prio)
    }

    #[test]
    fn admit_keeps_job_and_reject_rolls_back() {
        let mut svc = AdmissionService::new(ServiceConfig::default());
        svc.load("acme", base_system()).unwrap();
        let light = svc.admit("acme", candidate("ok", 3, 10)).unwrap();
        assert_eq!(light.verdict, Verdict::Admitted);
        assert_eq!(light.jobs, 3);
        assert!(svc
            .tenant_system("acme")
            .unwrap()
            .jobs()
            .iter()
            .any(|j| j.name == "ok"));

        // A hopeless candidate: exec far beyond its own deadline.
        let heavy = svc.admit("acme", candidate("nope", 500, 11)).unwrap();
        assert_eq!(heavy.verdict, Verdict::Rejected);
        assert_eq!(heavy.jobs, 3, "rolled back");
        assert!(!svc
            .tenant_system("acme")
            .unwrap()
            .jobs()
            .iter()
            .any(|j| j.name == "nope"));
        assert!(heavy.generation > light.generation, "generations ascend");
    }

    #[test]
    fn duplicate_and_unknown_names_are_reported() {
        let mut svc = AdmissionService::new(ServiceConfig::default());
        svc.load("t", base_system()).unwrap();
        let err = svc.admit("t", candidate("T1", 1, 10)).unwrap_err();
        assert!(matches!(err, ServiceError::DuplicateJob { .. }), "{err}");
        let err = svc.admit("ghost", candidate("X", 1, 10)).unwrap_err();
        assert!(matches!(err, ServiceError::UnknownTenant(_)), "{err}");
        let err = svc.remove("t", "ghost-job").unwrap_err();
        assert!(matches!(err, ServiceError::UnknownJob { .. }), "{err}");
    }

    #[test]
    fn remove_then_readmit_by_name() {
        let mut svc = AdmissionService::new(ServiceConfig::default());
        svc.load("t", base_system()).unwrap();
        svc.admit("t", candidate("X", 3, 10)).unwrap();
        let out = svc.remove("t", "X").unwrap();
        assert_eq!(out.jobs, 2);
        // Same name admits again after removal.
        let again = svc.admit("t", candidate("X", 3, 10)).unwrap();
        assert_eq!(again.verdict, Verdict::Admitted);
    }

    #[test]
    fn scale_is_absolute_from_base() {
        let mut svc = AdmissionService::new(ServiceConfig::default());
        svc.load("t", base_system()).unwrap();
        let crushed = svc.scale("t", 20.0).unwrap();
        assert_eq!(crushed.schedulable, Some(false));
        let restored = svc.scale("t", 1.0).unwrap();
        assert_eq!(restored.schedulable, Some(true));
        assert!(svc.scale("t", 0.0).is_err());
        assert!(svc.scale("t", f64::NAN).is_err());
    }

    #[test]
    fn lru_eviction_bounds_resident_tenants() {
        let cfg = ServiceConfig {
            max_tenants: 2,
            ..ServiceConfig::default()
        };
        let mut svc = AdmissionService::new(cfg);
        svc.load("a", base_system()).unwrap();
        svc.load("b", base_system()).unwrap();
        // Touch "a" so "b" becomes the LRU victim.
        svc.stats("a").unwrap();
        let out = svc.load("c", base_system()).unwrap();
        assert_eq!(out.evicted.as_deref(), Some("b"));
        assert_eq!(svc.tenant_count(), 2);
        assert!(svc.contains("a") && svc.contains("c") && !svc.contains("b"));
        assert_eq!(svc.evictions(), 1);
    }

    #[test]
    fn generations_survive_eviction_and_reload() {
        let cfg = ServiceConfig {
            max_tenants: 1,
            ..ServiceConfig::default()
        };
        let mut svc = AdmissionService::new(cfg);
        let g1 = svc.load("a", base_system()).unwrap().generation;
        let g2 = svc.admit("a", candidate("X", 3, 10)).unwrap().generation;
        svc.load("b", base_system()).unwrap(); // evicts "a"
        assert!(!svc.contains("a"));
        let g3 = svc.load("a", base_system()).unwrap().generation;
        assert!(g1 < g2 && g2 < g3, "{g1} {g2} {g3}");
    }

    #[test]
    fn load_verdict_matches_cold_analysis() {
        let sys = base_system();
        let cold = crate::analyze_exact_spp(&sys, &AnalysisConfig::default()).unwrap();
        let mut svc = AdmissionService::new(ServiceConfig::default());
        let out = svc.load("t", sys).unwrap();
        assert_eq!(out.schedulable, cold.all_schedulable());
        assert_eq!(out.report, cold.to_string());
        assert_eq!(out.jobs, 2);
    }

    #[test]
    fn non_spp_tenants_use_the_loops_oracle() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Fcfs);
        b.add_job("T1", Time(100), periodic(50), vec![(p, Time(10))]);
        let sys = b.build().unwrap();
        let mut svc = AdmissionService::new(ServiceConfig::default());
        let out = svc.load("t", sys).unwrap();
        assert!(out.schedulable);
        assert!(matches!(svc.tenant_oracle("t"), Some(Oracle::Loops { .. })));
        let fit = Job {
            name: "X".into(),
            deadline: Time(300),
            arrival: periodic(150),
            subjobs: vec![Subjob {
                processor: rta_model::ProcessorId(0),
                exec: Time(5),
                priority: None,
                weight: None,
            }],
        };
        assert_eq!(svc.admit("t", fit).unwrap().verdict, Verdict::Admitted);
    }

    #[test]
    fn region_reports_frontiers_without_mutating() {
        let mut svc = AdmissionService::new(ServiceConfig::default());
        svc.load("t", base_system()).unwrap();
        let gen_before = svc.stats("t").unwrap().generation;
        let report = svc.region("t", (0.5, 4.0, 8), (1, 1, 1)).unwrap();
        assert_eq!(report.rows.len(), 1);
        assert!(report.rows[0].frontier.is_some());
        assert_eq!(svc.stats("t").unwrap().generation, gen_before);
    }

    #[test]
    fn stats_track_warm_reuse() {
        let mut svc = AdmissionService::new(ServiceConfig::default());
        svc.load("t", base_system()).unwrap();
        for i in 0..4 {
            // Candidates land on P2: T1's hop on P1 and all of T2 sit
            // outside the dirty cone, so their curves are reused verbatim.
            let name = format!("J{i}");
            svc.admit("t", candidate_on(1, &name, 2, 20 + i)).unwrap();
            svc.remove("t", &name).unwrap();
        }
        let stats = svc.stats("t").unwrap();
        assert!(stats.session.subjobs_reused > 0, "{:?}", stats.session);
        assert_eq!(stats.jobs, 2);
    }
}

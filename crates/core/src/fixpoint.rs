//! Loop-tolerant bounds analysis — the Section 6 extension.
//!
//! When a job visits the same processor twice ("physical loop") or two jobs
//! interfere with each other's upstream hops ("logical loop"), the subjob
//! dependency relation is cyclic and the one-pass analyses fail with
//! [`AnalysisError::CyclicDependency`]. Section 6 of the paper sketches the
//! remedy: treat the unknown quantities as a vector `X` and iterate
//! `Xⁿ⁺¹ = F(Xⁿ)` from `X¹ = 0̄`.
//!
//! This module implements that scheme over *service-curve* unknowns:
//!
//! * Arrival envelopes never need peer services: instance `m` reaches hop
//!   `j` no earlier than its release plus the minimum processing of the
//!   upstream hops, so `f̄_{arr,j}(t) = f_{arr,1}(t − Σ_{i<j} τ_i)` is a
//!   sound (cycle-free) envelope.
//! * Higher-priority interference starts from the information-free bounds
//!   `S̄_h⁰ = min(t, c̄_h(t))`, `S̲_h⁰ = 0`, and each round recomputes every
//!   subjob's Theorem 5/6 (or 8/9) bounds from the previous round's values.
//!   Every round's output is sound, and rounds only tighten, so the
//!   iteration can stop at any budget; it converges when no curve changes.
//!
//! The result is looser than [`crate::analyze_bounds`] on acyclic systems
//! (which chains the tighter Lemma-2 envelopes hop by hop) but is defined
//! for arbitrary topologies.
//!
//! ## Warm starts
//!
//! The only cross-subjob inputs of a round are the service bounds of
//! strictly higher-priority peers on the same processor. Priorities are a
//! strict order per processor, so that input relation is a DAG even when the
//! full subjob dependency graph (with chain edges) is cyclic — the arrival
//! envelopes above are computed once, outside the iteration. A DAG of pure
//! per-node functions has exactly one fixed point, reached from *any*
//! starting vector within `depth + 1` rounds. [`analyze_with_loops_seeded`]
//! exploits this: seeding the iteration with the converged bounds of a
//! nearby system (e.g. the previous bisection step of
//! [`crate::sensitivity::critical_scaling`]) starts next to the new fixed
//! point and typically converges in one verification round, while producing
//! bit-identical reports to a cold start whenever the round budget lets the
//! cold run converge. The cold entry point [`analyze_with_loops`] is kept
//! unchanged as the correctness oracle.
//!
//! ## Memory discipline
//!
//! All interior state — dense subjob tables, arrival/workload curves,
//! double-buffered bound iterates and the curve [`Scratch`] — lives in a
//! per-thread [`LoopWorkspace`] that is reused across calls. Small systems
//! (below [`PAR_THRESHOLD`] subjobs) run the rounds sequentially through
//! the `_into` kernels: after a warm-up call on the same frame, a seeded
//! re-analysis performs O(1) heap allocations (see DESIGN.md §4d and the
//! `alloc_budget` test in `rta-bench`). Larger systems fan rounds out over
//! the persistent worker pool exactly as before; both paths compute
//! bit-identical results (pinned by `sequential_and_parallel_agree`).

use std::cell::RefCell;
use std::sync::Arc;

use crate::config::{AnalysisConfig, SpnpAvailability};
use crate::error::AnalysisError;
use crate::policy::{
    policy_for, BoundsInputs, PeerInputs, ProcessorContexts, ServicePolicy, SoaBoundsInputs,
};
use crate::report::{BoundsReport, JobBound};
use crate::spnp::{ServiceBounds, SoaServiceBounds};
use rta_curves::{Curve, Scratch, SoaCurve, Time};
use rta_model::{JobId, ProcessorId, SubjobRef, TaskSystem};

/// Systems with at least this many subjobs fan each round out over the
/// worker pool; smaller ones iterate sequentially in the caller's
/// workspace, which is both faster (no dispatch overhead) and
/// allocation-free when warm.
const PAR_THRESHOLD: usize = 32;

/// Converged interior state of a loop-tolerant run, reusable as the seed of
/// the next run on a system with the same topology and analysis frame.
///
/// The bounds are shared (`Arc`) and stored in structure-of-arrays layout —
/// the working representation of the warm rounds (DESIGN.md §4g), so
/// re-seeding copies flat arrays (or, for an unchanged system, returns a
/// handle to the same vector) without ever materializing AoS segments.
#[derive(Clone, Debug)]
pub struct LoopSeed {
    pub(crate) window: Time,
    pub(crate) horizon: Time,
    pub(crate) bounds: Arc<Vec<SoaServiceBounds>>,
}

impl LoopSeed {
    /// `true` when this seed can start an analysis at frame
    /// `(window, horizon)` over `n` subjobs.
    pub fn matches(&self, window: Time, horizon: Time, n: usize) -> bool {
        self.window == window && self.horizon == horizon && self.bounds.len() == n
    }
}

/// Per-thread state of the fixpoint driver, reused across calls so a warm
/// seeded re-analysis allocates nothing: dense subjob tables (the `i`-th
/// entry of every vector describes subjob `refs[i]`, in `all_subjobs`
/// order), the cycle-free envelopes, the double-buffered bound iterates
/// (`cur`/`next`), and the curve scratch arena.
#[derive(Default)]
struct LoopWorkspace {
    scratch: Scratch,
    refs: Vec<SubjobRef>,
    /// `job_start[k] + j` is the dense index of subjob `j` of job `k`.
    job_start: Vec<usize>,
    times: Vec<Time>,
    stage: Curve,
    /// SoA staging pair: round-0 cold-init temporaries, then the Eq. 12
    /// `floor_div` departure curve.
    stage_soa: SoaCurve,
    dep_soa: SoaCurve,
    arr_env: Vec<Curve>,
    /// Per-subjob workloads in both layouts, built once at model ingest:
    /// the SoA copy feeds the rounds, the AoS copy feeds shared-workload
    /// policy contexts and the conversion fallback (DESIGN.md §4g).
    workload: Vec<Curve>,
    workload_soa: Vec<SoaCurve>,
    policy: Vec<&'static dyn ServicePolicy>,
    tau: Vec<Time>,
    weight: Vec<u32>,
    blocking: Vec<Time>,
    processor: Vec<usize>,
    /// Flattened higher-priority peer indices; node `i`'s peers are
    /// `hp_flat[hp_start[i]..hp_start[i + 1]]`.
    hp_flat: Vec<usize>,
    hp_start: Vec<usize>,
    /// Double-buffered bound iterates, in SoA layout end-to-end: a warm
    /// round never materializes an AoS segment array.
    cur: Vec<SoaServiceBounds>,
    next: Vec<SoaServiceBounds>,
    stale: Vec<bool>,
    changed: Vec<bool>,
}

thread_local! {
    static LOOP_WS: RefCell<LoopWorkspace> = RefCell::new(LoopWorkspace::default());
}

fn ensure_curves(v: &mut Vec<Curve>, n: usize) {
    if v.len() < n {
        v.resize_with(n, Curve::zero);
    }
}

fn ensure_soa_curves(v: &mut Vec<SoaCurve>, n: usize) {
    if v.len() < n {
        v.resize_with(n, SoaCurve::zero);
    }
}

fn ensure_bounds(v: &mut Vec<SoaServiceBounds>, n: usize) {
    if v.len() < n {
        v.resize_with(n, SoaServiceBounds::zeroed);
    }
}

/// Round-invariant inputs of one subjob, detached from the workspace so
/// the parallel round closures are `'static` for the worker pool.
struct RoundNode {
    workload: Curve,
    /// Dense indices of strictly-higher-priority peers (empty for
    /// shared-workload policies like FCFS and IWRR).
    hp: Vec<usize>,
    policy: &'static dyn ServicePolicy,
    processor: usize,
    tau: Time,
    weight: u32,
    blocking: Time,
}

/// Everything a parallel Jacobi round reads besides the previous round's
/// bounds.
struct RoundCtx {
    nodes: Vec<RoundNode>,
    ctxs: ProcessorContexts,
    avail: SpnpAvailability,
    horizon: Time,
}

/// Run the loop-tolerant fixed-point analysis for at most `max_rounds`
/// refinement rounds (each round is a full sweep over all subjobs).
pub fn analyze_with_loops(
    sys: &TaskSystem,
    cfg: &AnalysisConfig,
    max_rounds: usize,
) -> Result<BoundsReport, AnalysisError> {
    analyze_with_loops_seeded(sys, cfg, max_rounds, None).map(|(report, _)| report)
}

/// [`analyze_with_loops`] with an optional warm-start seed; also returns the
/// converged bounds as the seed for the next run.
///
/// A seed is used only when [`LoopSeed::matches`] the resolved frame and
/// subjob count; otherwise the run silently falls back to the cold round-0
/// bounds. See the module docs for why seeding cannot change the converged
/// result.
pub fn analyze_with_loops_seeded(
    sys: &TaskSystem,
    cfg: &AnalysisConfig,
    max_rounds: usize,
    seed: Option<&LoopSeed>,
) -> Result<(BoundsReport, LoopSeed), AnalysisError> {
    LOOP_WS.with(|ws| {
        let mut ws = ws.borrow_mut();
        analyze_seeded_in(sys, cfg, max_rounds, seed, &mut ws, PAR_THRESHOLD)
    })
}

/// [`analyze_with_loops`] forced onto the retained AoS kernels (the
/// parallel-round path, which never touches the SoA iterate buffers).
///
/// This is the pinned reference driver: the SoA rounds are required to be
/// bit-identical to it, and the driver-level oracle tests compare full
/// reports from both entry points. It is not a performance API.
pub fn analyze_with_loops_aos_reference(
    sys: &TaskSystem,
    cfg: &AnalysisConfig,
    max_rounds: usize,
) -> Result<BoundsReport, AnalysisError> {
    let mut ws = LoopWorkspace::default();
    analyze_seeded_in(sys, cfg, max_rounds, None, &mut ws, 0).map(|(report, _)| report)
}

fn analyze_seeded_in(
    sys: &TaskSystem,
    cfg: &AnalysisConfig,
    max_rounds: usize,
    seed: Option<&LoopSeed>,
    ws: &mut LoopWorkspace,
    par_threshold: usize,
) -> Result<(BoundsReport, LoopSeed), AnalysisError> {
    sys.validate(true)?;
    assert!(max_rounds >= 1);
    let (window, horizon) = cfg.resolve(sys);

    // ---- Dense subjob tables (all_subjobs order). ----
    ws.refs.clear();
    ws.job_start.clear();
    for (k, job) in sys.jobs().iter().enumerate() {
        ws.job_start.push(ws.refs.len());
        for j in 0..job.subjobs.len() {
            ws.refs.push(SubjobRef {
                job: JobId(k),
                index: j,
            });
        }
    }
    let n = ws.refs.len();

    // ---- Cycle-free arrival envelopes and workloads. This is the single
    // AoS→SoA ingest boundary: the workloads convert here, once, and the
    // rounds run on the flat arrays. ----
    ensure_curves(&mut ws.arr_env, n);
    ensure_curves(&mut ws.workload, n);
    ensure_soa_curves(&mut ws.workload_soa, n);
    for i in 0..n {
        let r = ws.refs[i];
        let job = sys.job(r.job);
        job.arrival.release_times_into(window, &mut ws.times);
        Curve::from_event_times_into(&ws.times, &mut ws.stage);
        let min_shift: Time = job.subjobs[..r.index].iter().map(|s| s.exec).sum();
        ws.stage.shift_right_into(min_shift, 0, &mut ws.arr_env[i]);
        ws.arr_env[i].scale_into(sys.subjob(r).exec.ticks(), &mut ws.workload[i]);
        ws.workload_soa[i].copy_from_curve(&ws.workload[i]);
    }

    // ---- Per-node policy metadata. Higher-priority peer slots are the
    // only cross-subjob inputs of a round, so they drive the staleness
    // tracking; the enumeration order matches `higher_priority_peers`. ----
    ws.policy.clear();
    ws.tau.clear();
    ws.weight.clear();
    ws.blocking.clear();
    ws.processor.clear();
    ws.hp_flat.clear();
    ws.hp_start.clear();
    for i in 0..n {
        let r = ws.refs[i];
        let s = sys.subjob(r);
        let policy = policy_for(sys.processor(s.processor).scheduler);
        ws.hp_start.push(ws.hp_flat.len());
        if policy.peer_inputs() == PeerInputs::HigherPriorityServices {
            let phi = s.priority.expect("validated: priorities assigned");
            for (h, &o) in ws.refs.iter().enumerate() {
                if o == r {
                    continue;
                }
                let os = sys.subjob(o);
                if os.processor == s.processor && os.priority.expect("assigned") < phi {
                    ws.hp_flat.push(h);
                }
            }
        }
        ws.policy.push(policy);
        ws.tau.push(s.exec);
        ws.weight.push(s.weight());
        ws.blocking.push(policy.blocking(sys, r));
        ws.processor.push(s.processor.0);
    }
    ws.hp_start.push(ws.hp_flat.len());

    // Shared-workload policy contexts (FCFS, IWRR) depend only on the
    // (round-invariant) peer workloads: build each processor's context
    // once, before the rounds. Priority policies never enter this branch,
    // so the warm path allocates nothing here.
    let mut ctxs = ProcessorContexts::new();
    for i in 0..n {
        if ws.policy[i].peer_inputs() == PeerInputs::SharedWorkloads {
            let p = ProcessorId(ws.processor[i]);
            let workload = &ws.workload;
            let job_start = &ws.job_start;
            ctxs.ensure(sys, p, horizon, &mut |o| {
                workload[job_start[o.job.0] + o.index].clone()
            })?;
        }
    }

    // ---- Round 0: the seed when it fits the frame, information-free
    // otherwise — built directly on the SoA kernels (segment-identical to
    // the AoS construction by the equivalence contract). ----
    ensure_bounds(&mut ws.cur, n);
    ensure_bounds(&mut ws.next, n);
    let seeded = seed.filter(|s| s.matches(window, horizon, n));
    if let Some(s) = seeded {
        for i in 0..n {
            ws.cur[i].lower.copy_from(&s.bounds[i].lower);
            ws.cur[i].upper.copy_from(&s.bounds[i].upper);
        }
    } else {
        for i in 0..n {
            ws.cur[i].lower.set_affine(0, 0);
            ws.stage_soa.set_affine(0, 1);
            ws.stage_soa
                .min_with_into(&ws.workload_soa[i], &mut ws.dep_soa);
            ws.dep_soa.clamp_min_into(0, &mut ws.cur[i].upper);
        }
    }

    // Subjob `i`'s round-r bounds are a pure function of the round-(r−1)
    // bounds of its higher-priority peers (and round-invariant workloads),
    // so a subjob whose inputs did not change in the previous round keeps
    // its memoized bounds. FCFS bounds have no cross-subjob inputs at all:
    // they are computed once in the first round and never again.
    let mut any_change_ever = false;
    if n < par_threshold {
        // Sequential rounds, double-buffered through `cur`/`next` with all
        // curve temporaries drawn from the scratch arena. Bounds stay in
        // SoA layout across rounds — the policies' `service_bounds_soa_into`
        // reads and writes the flat arrays directly.
        let LoopWorkspace {
            scratch,
            workload,
            workload_soa,
            policy,
            tau,
            weight,
            blocking,
            processor,
            hp_flat,
            hp_start,
            cur,
            next,
            stale,
            changed,
            ..
        } = &mut *ws;
        stale.clear();
        stale.resize(n, true);
        changed.clear();
        changed.resize(n, false);
        for _round in 0..max_rounds {
            let mut any_changed = false;
            {
                let mut hp_lower: Vec<&SoaCurve> = Vec::new();
                let mut hp_upper: Vec<&SoaCurve> = Vec::new();
                for i in 0..n {
                    if !stale[i] {
                        changed[i] = false;
                        next[i].lower.copy_from(&cur[i].lower);
                        next[i].upper.copy_from(&cur[i].upper);
                        continue;
                    }
                    hp_lower.clear();
                    hp_upper.clear();
                    for &h in &hp_flat[hp_start[i]..hp_start[i + 1]] {
                        hp_lower.push(&cur[h].lower);
                        hp_upper.push(&cur[h].upper);
                    }
                    policy[i].service_bounds_soa_into(
                        &SoaBoundsInputs {
                            workload: &workload_soa[i],
                            workload_aos: &workload[i],
                            tau: tau[i],
                            weight: weight[i],
                            blocking: blocking[i],
                            hp_lower: &hp_lower,
                            hp_upper: &hp_upper,
                            variant: cfg.spnp_availability,
                            ctx: ctxs.get(ProcessorId(processor[i])),
                            horizon,
                            processor: ProcessorId(processor[i]),
                        },
                        scratch,
                        &mut next[i],
                    )?;
                    changed[i] = next[i] != cur[i];
                    any_changed |= changed[i];
                }
            }
            std::mem::swap(cur, next);
            if !any_changed {
                break;
            }
            any_change_ever = true;
            for i in 0..n {
                stale[i] = hp_flat[hp_start[i]..hp_start[i + 1]]
                    .iter()
                    .any(|&h| changed[h]);
            }
        }
    } else {
        // Parallel rounds: detach the round inputs from the workspace and
        // fan each sweep out over the persistent pool. This path runs on
        // the retained AoS kernels (it is the oracle the SoA rounds are
        // pinned against by `sequential_and_parallel_agree`), converting
        // the SoA iterates at entry and exit.
        let nodes: Vec<RoundNode> = (0..n)
            .map(|i| RoundNode {
                workload: ws.workload[i].clone(),
                hp: ws.hp_flat[ws.hp_start[i]..ws.hp_start[i + 1]].to_vec(),
                policy: ws.policy[i],
                processor: ws.processor[i],
                tau: ws.tau[i],
                weight: ws.weight[i],
                blocking: ws.blocking[i],
            })
            .collect();
        let ctx = Arc::new(RoundCtx {
            nodes,
            ctxs,
            avail: cfg.spnp_availability,
            horizon,
        });
        let mut bounds: Vec<ServiceBounds> = ws.cur[..n].iter().map(|b| b.to_bounds()).collect();
        let mut stale: Vec<bool> = vec![true; n];
        for _round in 0..max_rounds {
            let prev = Arc::new(std::mem::take(&mut bounds));
            let results: Vec<Option<Result<ServiceBounds, AnalysisError>>> = {
                let ctx = Arc::clone(&ctx);
                let prev = Arc::clone(&prev);
                let stale = Arc::new(stale.clone());
                crate::par::pool_map(prev.len(), move |i| {
                    if !stale[i] {
                        return None;
                    }
                    let node = &ctx.nodes[i];
                    let hp_lower: Vec<&Curve> = node.hp.iter().map(|&h| &prev[h].lower).collect();
                    let hp_upper: Vec<&Curve> = node.hp.iter().map(|&h| &prev[h].upper).collect();
                    Some(node.policy.service_bounds(&BoundsInputs {
                        workload: &node.workload,
                        tau: node.tau,
                        weight: node.weight,
                        blocking: node.blocking,
                        hp_lower: &hp_lower,
                        hp_upper: &hp_upper,
                        variant: ctx.avail,
                        ctx: ctx.ctxs.get(ProcessorId(node.processor)),
                        horizon: ctx.horizon,
                        processor: ProcessorId(node.processor),
                    }))
                })
            };
            let mut changed_now = vec![false; prev.len()];
            let mut any_changed = false;
            bounds = Vec::with_capacity(prev.len());
            for (i, res) in results.into_iter().enumerate() {
                match res {
                    Some(nb) => {
                        let nb = nb?;
                        if nb != prev[i] {
                            changed_now[i] = true;
                            any_changed = true;
                        }
                        bounds.push(nb);
                    }
                    None => bounds.push(prev[i].clone()),
                }
            }
            if !any_changed {
                break;
            }
            any_change_ever = true;
            for (i, s) in stale.iter_mut().enumerate() {
                *s = ctx.nodes[i].hp.iter().any(|&h| changed_now[h]);
            }
        }
        for (i, b) in bounds.into_iter().enumerate() {
            ws.cur[i].copy_from_bounds(&b);
        }
    }

    // ---- Per-hop delays (Eq. 12) against the cycle-free envelopes. ----
    let mut jobs = Vec::with_capacity(sys.jobs().len());
    for (k, job) in sys.jobs().iter().enumerate() {
        let job_id = JobId(k);
        job.arrival.release_times_into(window, &mut ws.times);
        let n_instances = ws.times.len() as i64;
        let mut hop_delays = Vec::with_capacity(job.subjobs.len());
        for j in 0..job.subjobs.len() {
            let i = ws.job_start[k] + j;
            // SoA sweep: the converged lower bound is already SoA, so the
            // departure extraction and the Eq. 12 cursor walk run on the
            // flat arrays with no conversion at all.
            ws.cur[i].lower.floor_div_into(
                job.subjobs[j].exec.ticks(),
                horizon,
                &mut ws.dep_soa,
            )?;
            hop_delays.push(crate::bounds::hop_delay_soa(
                &ws.arr_env[i],
                &ws.dep_soa,
                n_instances,
            ));
        }
        let e2e_bound = hop_delays
            .iter()
            .try_fold(Time::ZERO, |acc, d| d.map(|d| acc + d));
        jobs.push(JobBound {
            job: job_id,
            hop_delays,
            e2e_bound,
            deadline: job.deadline,
        });
    }
    let report = BoundsReport {
        window,
        horizon,
        jobs,
    };
    // An unchanged seeded run converged onto its own seed: hand the same
    // Arc back instead of cloning every curve.
    let next_seed = match seeded {
        Some(s) if !any_change_ever => LoopSeed {
            window,
            horizon,
            bounds: Arc::clone(&s.bounds),
        },
        _ => LoopSeed {
            window,
            horizon,
            bounds: Arc::new(ws.cur[..n].to_vec()),
        },
    };
    Ok((report, next_seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::{evaluation_order, SubjobIndex};
    use rta_model::priority::{assign_priorities, PriorityPolicy};
    use rta_model::{ArrivalPattern, SchedulerKind, SystemBuilder};

    fn periodic(p: i64) -> ArrivalPattern {
        ArrivalPattern::Periodic {
            period: Time(p),
            offset: Time::ZERO,
        }
    }

    /// The figure-eight system whose dependency graph is cyclic.
    fn looped_system() -> TaskSystem {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(200),
            periodic(40),
            vec![(p1, Time(4)), (p2, Time(4))],
        );
        let t2 = b.add_job(
            "T2",
            Time(200),
            periodic(40),
            vec![(p2, Time(4)), (p1, Time(4))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 2);
        b.set_priority(SubjobRef { job: t2, index: 1 }, 1);
        b.set_priority(SubjobRef { job: t1, index: 1 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        b.build().unwrap()
    }

    #[test]
    fn handles_cyclic_topologies() {
        let sys = looped_system();
        let idx = SubjobIndex::new(&sys);
        assert!(matches!(
            evaluation_order(&sys, &idx),
            Err(AnalysisError::CyclicDependency { .. })
        ));
        let r = analyze_with_loops(&sys, &AnalysisConfig::default(), 8).unwrap();
        // Light load (8/40 per processor): everything comfortably bounded.
        for j in &r.jobs {
            let d = j.e2e_bound.expect("bounded");
            assert!(d >= Time(8), "at least the execution demand: {d:?}");
            assert!(j.schedulable(), "loop at low load must admit: {d:?}");
        }
    }

    #[test]
    fn rounds_only_tighten() {
        let sys = looped_system();
        let cfg = AnalysisConfig::default();
        let r1 = analyze_with_loops(&sys, &cfg, 1).unwrap();
        let r4 = analyze_with_loops(&sys, &cfg, 6).unwrap();
        for k in 0..sys.jobs().len() {
            let (a, b) = (r1.jobs[k].e2e_bound, r4.jobs[k].e2e_bound);
            match (a, b) {
                (Some(a), Some(b)) => assert!(b <= a, "job {k}: {b:?} > {a:?}"),
                (None, _) => {}
                (Some(_), None) => panic!("refinement lost a bound"),
            }
        }
    }

    #[test]
    fn acyclic_systems_also_work() {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spnp);
        b.add_job(
            "T1",
            Time(100),
            periodic(25),
            vec![(p1, Time(3)), (p2, Time(4))],
        );
        b.add_job("T2", Time(100), periodic(30), vec![(p2, Time(5))]);
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        let lo = analyze_with_loops(&sys, &AnalysisConfig::default(), 6).unwrap();
        let direct = crate::analyze_bounds(&sys, &AnalysisConfig::default()).unwrap();
        for k in 0..2 {
            let (a, b) = (
                lo.jobs[k].e2e_bound.expect("bounded"),
                direct.jobs[k].e2e_bound.expect("bounded"),
            );
            // Both sound; the fixpoint variant may be looser but must agree
            // on schedulability here.
            assert!(lo.jobs[k].schedulable() && direct.jobs[k].schedulable());
            let _ = (a, b);
        }
    }

    #[test]
    fn overloaded_loop_is_rejected() {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(20),
            periodic(10),
            vec![(p1, Time(6)), (p2, Time(6))],
        );
        let t2 = b.add_job(
            "T2",
            Time(20),
            periodic(10),
            vec![(p2, Time(6)), (p1, Time(6))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 2);
        b.set_priority(SubjobRef { job: t2, index: 1 }, 1);
        b.set_priority(SubjobRef { job: t1, index: 1 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = analyze_with_loops(&sys, &AnalysisConfig::default(), 8).unwrap();
        assert!(!r.all_schedulable());
    }

    #[test]
    fn warm_start_from_own_solution_is_identical_and_converges_in_one_round() {
        let sys = looped_system();
        let cfg = AnalysisConfig::default();
        let (cold, seed) = analyze_with_loops_seeded(&sys, &cfg, 16, None).unwrap();
        // Re-analyzing the same system from its converged seed must converge
        // immediately (a 1-round budget suffices) to the same report.
        let (warm, seed2) = analyze_with_loops_seeded(&sys, &cfg, 1, Some(&seed)).unwrap();
        assert_eq!(format!("{cold}"), format!("{warm}"));
        for (a, b) in seed.bounds.iter().zip(seed2.bounds.iter()) {
            assert_eq!(a.lower, b.lower);
            assert_eq!(a.upper, b.upper);
        }
        // The converged warm seed shares storage with its input seed.
        assert!(Arc::ptr_eq(&seed.bounds, &seed2.bounds));
    }

    #[test]
    fn mismatched_seed_falls_back_to_cold() {
        let sys = looped_system();
        let cfg = AnalysisConfig::default();
        let (_, seed) = analyze_with_loops_seeded(&sys, &cfg, 16, None).unwrap();
        // A frame the seed does not match: different arrival window.
        let other = AnalysisConfig {
            arrival_window: Some(Time(777)),
            ..AnalysisConfig::default()
        };
        let cold = analyze_with_loops(&sys, &other, 16).unwrap();
        let (warm, _) = analyze_with_loops_seeded(&sys, &other, 16, Some(&seed)).unwrap();
        assert_eq!(format!("{cold}"), format!("{warm}"));
    }

    /// The sequential in-workspace path and the pool-dispatched path are
    /// the same analysis: bit-identical reports and seed curves.
    #[test]
    fn sequential_and_parallel_agree() {
        let run = |threshold: usize, seed: Option<&LoopSeed>, rounds: usize| {
            let sys = looped_system();
            let cfg = AnalysisConfig::default();
            let mut ws = LoopWorkspace::default();
            analyze_seeded_in(&sys, &cfg, rounds, seed, &mut ws, threshold).unwrap()
        };
        let (seq, seq_seed) = run(usize::MAX, None, 8);
        let (par, par_seed) = run(0, None, 8);
        assert_eq!(format!("{seq}"), format!("{par}"));
        for (a, b) in seq_seed.bounds.iter().zip(par_seed.bounds.iter()) {
            assert_eq!(a.lower, b.lower);
            assert_eq!(a.upper, b.upper);
        }
        // Warm runs agree too.
        let (seq_w, _) = run(usize::MAX, Some(&seq_seed), 1);
        let (par_w, _) = run(0, Some(&par_seed), 1);
        assert_eq!(format!("{seq_w}"), format!("{par_w}"));
    }
}

//! Loop-tolerant bounds analysis — the Section 6 extension.
//!
//! When a job visits the same processor twice ("physical loop") or two jobs
//! interfere with each other's upstream hops ("logical loop"), the subjob
//! dependency relation is cyclic and the one-pass analyses fail with
//! [`AnalysisError::CyclicDependency`]. Section 6 of the paper sketches the
//! remedy: treat the unknown quantities as a vector `X` and iterate
//! `Xⁿ⁺¹ = F(Xⁿ)` from `X¹ = 0̄`.
//!
//! This module implements that scheme over *service-curve* unknowns:
//!
//! * Arrival envelopes never need peer services: instance `m` reaches hop
//!   `j` no earlier than its release plus the minimum processing of the
//!   upstream hops, so `f̄_{arr,j}(t) = f_{arr,1}(t − Σ_{i<j} τ_i)` is a
//!   sound (cycle-free) envelope.
//! * Higher-priority interference starts from the information-free bounds
//!   `S̄_h⁰ = min(t, c̄_h(t))`, `S̲_h⁰ = 0`, and each round recomputes every
//!   subjob's Theorem 5/6 (or 8/9) bounds from the previous round's values.
//!   Every round's output is sound, and rounds only tighten, so the
//!   iteration can stop at any budget; it converges when no curve changes.
//!
//! The result is looser than [`crate::analyze_bounds`] on acyclic systems
//! (which chains the tighter Lemma-2 envelopes hop by hop) but is defined
//! for arbitrary topologies.

use crate::config::AnalysisConfig;
use crate::depgraph::SubjobIndex;
use crate::error::AnalysisError;
use crate::fcfs::FcfsProcessor;
use crate::report::{BoundsReport, JobBound};
use crate::spnp::{spnp_bounds, ServiceBounds};
use rta_curves::{Curve, Time};
use rta_model::{JobId, SchedulerKind, SubjobRef, TaskSystem};

/// Run the loop-tolerant fixed-point analysis for at most `max_rounds`
/// refinement rounds (each round is a full sweep over all subjobs).
pub fn analyze_with_loops(
    sys: &TaskSystem,
    cfg: &AnalysisConfig,
    max_rounds: usize,
) -> Result<BoundsReport, AnalysisError> {
    sys.validate(true)?;
    assert!(max_rounds >= 1);
    let (window, horizon) = cfg.resolve(sys);
    let idx = SubjobIndex::new(sys);

    // Cycle-free arrival envelopes and workloads.
    let mut arr_env: Vec<Curve> = Vec::with_capacity(idx.len());
    let mut workload: Vec<Curve> = Vec::with_capacity(idx.len());
    for &r in idx.refs() {
        let job = sys.job(r.job);
        let first = job.arrival.arrival_curve(window);
        let min_shift: Time = job.subjobs[..r.index].iter().map(|s| s.exec).sum();
        let env = first.shift_right(min_shift, 0);
        workload.push(env.scale(sys.subjob(r).exec.ticks()));
        arr_env.push(env);
    }

    // Round 0: information-free bounds.
    let mut bounds: Vec<ServiceBounds> = (0..idx.len())
        .map(|i| ServiceBounds {
            lower: Curve::zero(),
            upper: Curve::identity().min_with(&workload[i]).clamp_min(0),
        })
        .collect();

    // FCFS processor contexts depend only on the (round-invariant) peer
    // workloads: build each processor's context once, before the rounds.
    let mut fcfs_ctx: std::collections::HashMap<usize, FcfsProcessor> =
        std::collections::HashMap::new();
    for &r in idx.refs() {
        let s = sys.subjob(r);
        if sys.processor(s.processor).scheduler == SchedulerKind::Fcfs {
            if let std::collections::hash_map::Entry::Vacant(e) = fcfs_ctx.entry(s.processor.0) {
                let peers = sys.subjobs_on(s.processor);
                let peer_workloads: Vec<&Curve> =
                    peers.iter().map(|o| &workload[idx.index(*o)]).collect();
                e.insert(FcfsProcessor::new(&peer_workloads, horizon)?);
            }
        }
    }

    // Higher-priority peer slots per subjob — these are the only cross-subjob
    // inputs of a round, so they drive the staleness tracking below.
    let hp_slots: Vec<Vec<usize>> = idx
        .refs()
        .iter()
        .map(|&r| {
            // FCFS subjobs have no priorities (and no cross-round inputs).
            match sys.processor(sys.subjob(r).processor).scheduler {
                SchedulerKind::Fcfs => Vec::new(),
                SchedulerKind::Spp | SchedulerKind::Spnp => sys
                    .higher_priority_peers(r)
                    .into_iter()
                    .map(|h| idx.index(h))
                    .collect(),
            }
        })
        .collect();

    // Subjob `i`'s round-r bounds are a pure function of the round-(r−1)
    // bounds of its higher-priority peers (and round-invariant workloads),
    // so each round fans out over scoped threads, and a subjob whose inputs
    // did not change in the previous round keeps its memoized bounds. FCFS
    // bounds have no cross-subjob inputs at all: they are computed once in
    // round 0 and never again.
    let mut stale: Vec<bool> = vec![true; idx.len()];
    for _round in 0..max_rounds {
        let results: Vec<Option<Result<ServiceBounds, AnalysisError>>> =
            crate::par::par_map(idx.len(), |i| {
                if !stale[i] {
                    return None;
                }
                let r = idx.refs()[i];
                let s = sys.subjob(r);
                let tau = s.exec;
                let nb = match sys.processor(s.processor).scheduler {
                    SchedulerKind::Spp | SchedulerKind::Spnp => {
                        let blocking = match sys.processor(s.processor).scheduler {
                            SchedulerKind::Spnp => sys.blocking_time(r),
                            _ => Time::ZERO,
                        };
                        let hp_lower: Vec<&Curve> =
                            hp_slots[i].iter().map(|&h| &bounds[h].lower).collect();
                        let hp_upper: Vec<&Curve> =
                            hp_slots[i].iter().map(|&h| &bounds[h].upper).collect();
                        Ok(spnp_bounds(
                            &workload[i],
                            &hp_lower,
                            &hp_upper,
                            blocking,
                            cfg.spnp_availability,
                        ))
                    }
                    SchedulerKind::Fcfs => fcfs_ctx[&s.processor.0]
                        .service_bounds(&workload[i], tau)
                        .map_err(AnalysisError::from),
                };
                Some(nb)
            });
        let mut changed_now = vec![false; idx.len()];
        let mut any_changed = false;
        for (i, res) in results.into_iter().enumerate() {
            if let Some(nb) = res {
                let nb = nb?;
                if nb.lower != bounds[i].lower || nb.upper != bounds[i].upper {
                    changed_now[i] = true;
                    any_changed = true;
                    bounds[i] = nb;
                }
            }
        }
        if !any_changed {
            break;
        }
        for i in 0..idx.len() {
            stale[i] = hp_slots[i].iter().any(|&h| changed_now[h]);
        }
    }

    // Per-hop delays (Eq. 12) against the cycle-free envelopes.
    let mut jobs = Vec::with_capacity(sys.jobs().len());
    for (k, job) in sys.jobs().iter().enumerate() {
        let job_id = JobId(k);
        let n_instances = job.arrival.release_times(window).len() as i64;
        let mut hop_delays = Vec::with_capacity(job.subjobs.len());
        for j in 0..job.subjobs.len() {
            let i = idx.index(SubjobRef {
                job: job_id,
                index: j,
            });
            let dep_lower = bounds[i]
                .lower
                .floor_div(job.subjobs[j].exec.ticks(), horizon)?;
            hop_delays.push(crate::bounds::hop_delay(
                &arr_env[i],
                &dep_lower,
                n_instances,
            ));
        }
        let e2e_bound = hop_delays
            .iter()
            .try_fold(Time::ZERO, |acc, d| d.map(|d| acc + d));
        jobs.push(JobBound {
            job: job_id,
            hop_delays,
            e2e_bound,
            deadline: job.deadline,
        });
    }
    Ok(BoundsReport {
        window,
        horizon,
        jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::evaluation_order;
    use rta_model::priority::{assign_priorities, PriorityPolicy};
    use rta_model::{ArrivalPattern, SystemBuilder};

    fn periodic(p: i64) -> ArrivalPattern {
        ArrivalPattern::Periodic {
            period: Time(p),
            offset: Time::ZERO,
        }
    }

    /// The figure-eight system whose dependency graph is cyclic.
    fn looped_system() -> TaskSystem {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(200),
            periodic(40),
            vec![(p1, Time(4)), (p2, Time(4))],
        );
        let t2 = b.add_job(
            "T2",
            Time(200),
            periodic(40),
            vec![(p2, Time(4)), (p1, Time(4))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 2);
        b.set_priority(SubjobRef { job: t2, index: 1 }, 1);
        b.set_priority(SubjobRef { job: t1, index: 1 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        b.build().unwrap()
    }

    #[test]
    fn handles_cyclic_topologies() {
        let sys = looped_system();
        let idx = SubjobIndex::new(&sys);
        assert!(matches!(
            evaluation_order(&sys, &idx),
            Err(AnalysisError::CyclicDependency { .. })
        ));
        let r = analyze_with_loops(&sys, &AnalysisConfig::default(), 8).unwrap();
        // Light load (8/40 per processor): everything comfortably bounded.
        for j in &r.jobs {
            let d = j.e2e_bound.expect("bounded");
            assert!(d >= Time(8), "at least the execution demand: {d:?}");
            assert!(j.schedulable(), "loop at low load must admit: {d:?}");
        }
    }

    #[test]
    fn rounds_only_tighten() {
        let sys = looped_system();
        let cfg = AnalysisConfig::default();
        let r1 = analyze_with_loops(&sys, &cfg, 1).unwrap();
        let r4 = analyze_with_loops(&sys, &cfg, 6).unwrap();
        for k in 0..sys.jobs().len() {
            let (a, b) = (r1.jobs[k].e2e_bound, r4.jobs[k].e2e_bound);
            match (a, b) {
                (Some(a), Some(b)) => assert!(b <= a, "job {k}: {b:?} > {a:?}"),
                (None, _) => {}
                (Some(_), None) => panic!("refinement lost a bound"),
            }
        }
    }

    #[test]
    fn acyclic_systems_also_work() {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spnp);
        b.add_job(
            "T1",
            Time(100),
            periodic(25),
            vec![(p1, Time(3)), (p2, Time(4))],
        );
        b.add_job("T2", Time(100), periodic(30), vec![(p2, Time(5))]);
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        let lo = analyze_with_loops(&sys, &AnalysisConfig::default(), 6).unwrap();
        let direct = crate::analyze_bounds(&sys, &AnalysisConfig::default()).unwrap();
        for k in 0..2 {
            let (a, b) = (
                lo.jobs[k].e2e_bound.expect("bounded"),
                direct.jobs[k].e2e_bound.expect("bounded"),
            );
            // Both sound; the fixpoint variant may be looser but must agree
            // on schedulability here.
            assert!(lo.jobs[k].schedulable() && direct.jobs[k].schedulable());
            let _ = (a, b);
        }
    }

    #[test]
    fn overloaded_loop_is_rejected() {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(20),
            periodic(10),
            vec![(p1, Time(6)), (p2, Time(6))],
        );
        let t2 = b.add_job(
            "T2",
            Time(20),
            periodic(10),
            vec![(p2, Time(6)), (p1, Time(6))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 2);
        b.set_priority(SubjobRef { job: t2, index: 1 }, 1);
        b.set_priority(SubjobRef { job: t1, index: 1 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = analyze_with_loops(&sys, &AnalysisConfig::default(), 8).unwrap();
        assert!(!r.all_schedulable());
    }
}

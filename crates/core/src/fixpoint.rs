//! Loop-tolerant bounds analysis — the Section 6 extension.
//!
//! When a job visits the same processor twice ("physical loop") or two jobs
//! interfere with each other's upstream hops ("logical loop"), the subjob
//! dependency relation is cyclic and the one-pass analyses fail with
//! [`AnalysisError::CyclicDependency`]. Section 6 of the paper sketches the
//! remedy: treat the unknown quantities as a vector `X` and iterate
//! `Xⁿ⁺¹ = F(Xⁿ)` from `X¹ = 0̄`.
//!
//! This module implements that scheme over *service-curve* unknowns:
//!
//! * Arrival envelopes never need peer services: instance `m` reaches hop
//!   `j` no earlier than its release plus the minimum processing of the
//!   upstream hops, so `f̄_{arr,j}(t) = f_{arr,1}(t − Σ_{i<j} τ_i)` is a
//!   sound (cycle-free) envelope.
//! * Higher-priority interference starts from the information-free bounds
//!   `S̄_h⁰ = min(t, c̄_h(t))`, `S̲_h⁰ = 0`, and each round recomputes every
//!   subjob's Theorem 5/6 (or 8/9) bounds from the previous round's values.
//!   Every round's output is sound, and rounds only tighten, so the
//!   iteration can stop at any budget; it converges when no curve changes.
//!
//! The result is looser than [`crate::analyze_bounds`] on acyclic systems
//! (which chains the tighter Lemma-2 envelopes hop by hop) but is defined
//! for arbitrary topologies.
//!
//! ## Warm starts
//!
//! The only cross-subjob inputs of a round are the service bounds of
//! strictly higher-priority peers on the same processor. Priorities are a
//! strict order per processor, so that input relation is a DAG even when the
//! full subjob dependency graph (with chain edges) is cyclic — the arrival
//! envelopes above are computed once, outside the iteration. A DAG of pure
//! per-node functions has exactly one fixed point, reached from *any*
//! starting vector within `depth + 1` rounds. [`analyze_with_loops_seeded`]
//! exploits this: seeding the iteration with the converged bounds of a
//! nearby system (e.g. the previous bisection step of
//! [`crate::sensitivity::critical_scaling`]) starts next to the new fixed
//! point and typically converges in one verification round, while producing
//! bit-identical reports to a cold start whenever the round budget lets the
//! cold run converge. The cold entry point [`analyze_with_loops`] is kept
//! unchanged as the correctness oracle.

use std::sync::Arc;

use crate::config::{AnalysisConfig, SpnpAvailability};
use crate::depgraph::SubjobIndex;
use crate::error::AnalysisError;
use crate::policy::{policy_for, BoundsInputs, PeerInputs, ProcessorContexts, ServicePolicy};
use crate::report::{BoundsReport, JobBound};
use crate::spnp::ServiceBounds;
use rta_curves::{Curve, Time};
use rta_model::{JobId, ProcessorId, SubjobRef, TaskSystem};

/// Converged interior state of a loop-tolerant run, reusable as the seed of
/// the next run on a system with the same topology and analysis frame.
#[derive(Clone, Debug)]
pub struct LoopSeed {
    pub(crate) window: Time,
    pub(crate) horizon: Time,
    pub(crate) bounds: Vec<ServiceBounds>,
}

impl LoopSeed {
    /// `true` when this seed can start an analysis at frame
    /// `(window, horizon)` over `n` subjobs.
    pub fn matches(&self, window: Time, horizon: Time, n: usize) -> bool {
        self.window == window && self.horizon == horizon && self.bounds.len() == n
    }
}

/// Round-invariant inputs of one subjob, dispatched through the policy
/// seam each round.
struct RoundNode {
    workload: Curve,
    /// Dense indices of strictly-higher-priority peers (empty for
    /// shared-workload policies like FCFS and IWRR).
    hp: Vec<usize>,
    policy: &'static dyn ServicePolicy,
    processor: usize,
    tau: Time,
    weight: u32,
    blocking: Time,
}

/// Everything a Jacobi round reads besides the previous round's bounds.
/// Owned (no borrows) so round closures can run on the persistent pool.
struct RoundCtx {
    nodes: Vec<RoundNode>,
    ctxs: ProcessorContexts,
    avail: SpnpAvailability,
    horizon: Time,
}

/// Run the loop-tolerant fixed-point analysis for at most `max_rounds`
/// refinement rounds (each round is a full sweep over all subjobs).
pub fn analyze_with_loops(
    sys: &TaskSystem,
    cfg: &AnalysisConfig,
    max_rounds: usize,
) -> Result<BoundsReport, AnalysisError> {
    analyze_with_loops_seeded(sys, cfg, max_rounds, None).map(|(report, _)| report)
}

/// [`analyze_with_loops`] with an optional warm-start seed; also returns the
/// converged bounds as the seed for the next run.
///
/// A seed is used only when [`LoopSeed::matches`] the resolved frame and
/// subjob count; otherwise the run silently falls back to the cold round-0
/// bounds. See the module docs for why seeding cannot change the converged
/// result.
pub fn analyze_with_loops_seeded(
    sys: &TaskSystem,
    cfg: &AnalysisConfig,
    max_rounds: usize,
    seed: Option<&LoopSeed>,
) -> Result<(BoundsReport, LoopSeed), AnalysisError> {
    sys.validate(true)?;
    assert!(max_rounds >= 1);
    let (window, horizon) = cfg.resolve(sys);
    let idx = SubjobIndex::new(sys);

    // Cycle-free arrival envelopes and workloads.
    let mut arr_env: Vec<Curve> = Vec::with_capacity(idx.len());
    let mut workload: Vec<Curve> = Vec::with_capacity(idx.len());
    for &r in idx.refs() {
        let job = sys.job(r.job);
        let first = job.arrival.arrival_curve(window);
        let min_shift: Time = job.subjobs[..r.index].iter().map(|s| s.exec).sum();
        let env = first.shift_right(min_shift, 0);
        workload.push(env.scale(sys.subjob(r).exec.ticks()));
        arr_env.push(env);
    }

    // Shared-workload policy contexts (FCFS, IWRR) depend only on the
    // (round-invariant) peer workloads: build each processor's context
    // once, before the rounds.
    let mut ctxs = ProcessorContexts::new();
    for &r in idx.refs() {
        let s = sys.subjob(r);
        if policy_for(sys.processor(s.processor).scheduler).peer_inputs()
            == PeerInputs::SharedWorkloads
        {
            ctxs.ensure(sys, s.processor, horizon, &mut |o| {
                workload[idx.index(o)].clone()
            })?;
        }
    }

    // Per-subjob round inputs, detached from `sys` so the round closure is
    // `'static` for the worker pool. Higher-priority peer slots are the only
    // cross-subjob inputs of a round, so they drive the staleness tracking.
    let nodes: Vec<RoundNode> = idx
        .refs()
        .iter()
        .zip(workload.iter())
        .map(|(&r, w)| {
            let s = sys.subjob(r);
            let policy = policy_for(sys.processor(s.processor).scheduler);
            let hp = match policy.peer_inputs() {
                PeerInputs::HigherPriorityServices => sys
                    .higher_priority_peers(r)
                    .into_iter()
                    .map(|h| idx.index(h))
                    .collect(),
                PeerInputs::SharedWorkloads => Vec::new(),
            };
            RoundNode {
                workload: w.clone(),
                hp,
                policy,
                processor: s.processor.0,
                tau: s.exec,
                weight: s.weight(),
                blocking: policy.blocking(sys, r),
            }
        })
        .collect();
    let ctx = Arc::new(RoundCtx {
        nodes,
        ctxs,
        avail: cfg.spnp_availability,
        horizon,
    });

    // Round 0: the seed when it fits the frame, information-free otherwise.
    let mut bounds: Vec<ServiceBounds> = match seed {
        Some(s) if s.matches(window, horizon, idx.len()) => s.bounds.clone(),
        _ => (0..idx.len())
            .map(|i| ServiceBounds {
                lower: Curve::zero(),
                upper: Curve::identity()
                    .min_with(&ctx.nodes[i].workload)
                    .clamp_min(0),
            })
            .collect(),
    };

    // Subjob `i`'s round-r bounds are a pure function of the round-(r−1)
    // bounds of its higher-priority peers (and round-invariant workloads),
    // so each round fans out over the persistent pool, and a subjob whose
    // inputs did not change in the previous round keeps its memoized bounds.
    // FCFS bounds have no cross-subjob inputs at all: they are computed once
    // in the first round and never again.
    let mut stale: Vec<bool> = vec![true; idx.len()];
    for _round in 0..max_rounds {
        let prev = Arc::new(std::mem::take(&mut bounds));
        let results: Vec<Option<Result<ServiceBounds, AnalysisError>>> = {
            let ctx = Arc::clone(&ctx);
            let prev = Arc::clone(&prev);
            let stale = Arc::new(stale.clone());
            crate::par::pool_map(prev.len(), move |i| {
                if !stale[i] {
                    return None;
                }
                let node = &ctx.nodes[i];
                let hp_lower: Vec<&Curve> = node.hp.iter().map(|&h| &prev[h].lower).collect();
                let hp_upper: Vec<&Curve> = node.hp.iter().map(|&h| &prev[h].upper).collect();
                Some(node.policy.service_bounds(&BoundsInputs {
                    workload: &node.workload,
                    tau: node.tau,
                    weight: node.weight,
                    blocking: node.blocking,
                    hp_lower: &hp_lower,
                    hp_upper: &hp_upper,
                    variant: ctx.avail,
                    ctx: ctx.ctxs.get(ProcessorId(node.processor)),
                    horizon: ctx.horizon,
                    processor: ProcessorId(node.processor),
                }))
            })
        };
        let mut changed_now = vec![false; prev.len()];
        let mut any_changed = false;
        bounds = Vec::with_capacity(prev.len());
        for (i, res) in results.into_iter().enumerate() {
            match res {
                Some(nb) => {
                    let nb = nb?;
                    if nb.lower != prev[i].lower || nb.upper != prev[i].upper {
                        changed_now[i] = true;
                        any_changed = true;
                    }
                    bounds.push(nb);
                }
                None => bounds.push(prev[i].clone()),
            }
        }
        if !any_changed {
            break;
        }
        for (i, s) in stale.iter_mut().enumerate() {
            *s = ctx.nodes[i].hp.iter().any(|&h| changed_now[h]);
        }
    }

    // Per-hop delays (Eq. 12) against the cycle-free envelopes.
    let mut jobs = Vec::with_capacity(sys.jobs().len());
    for (k, job) in sys.jobs().iter().enumerate() {
        let job_id = JobId(k);
        let n_instances = job.arrival.release_times(window).len() as i64;
        let mut hop_delays = Vec::with_capacity(job.subjobs.len());
        for j in 0..job.subjobs.len() {
            let i = idx.index(SubjobRef {
                job: job_id,
                index: j,
            });
            let dep_lower = bounds[i]
                .lower
                .floor_div(job.subjobs[j].exec.ticks(), horizon)?;
            hop_delays.push(crate::bounds::hop_delay(
                &arr_env[i],
                &dep_lower,
                n_instances,
            ));
        }
        let e2e_bound = hop_delays
            .iter()
            .try_fold(Time::ZERO, |acc, d| d.map(|d| acc + d));
        jobs.push(JobBound {
            job: job_id,
            hop_delays,
            e2e_bound,
            deadline: job.deadline,
        });
    }
    let report = BoundsReport {
        window,
        horizon,
        jobs,
    };
    let next_seed = LoopSeed {
        window,
        horizon,
        bounds,
    };
    Ok((report, next_seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::evaluation_order;
    use rta_model::priority::{assign_priorities, PriorityPolicy};
    use rta_model::{ArrivalPattern, SchedulerKind, SystemBuilder};

    fn periodic(p: i64) -> ArrivalPattern {
        ArrivalPattern::Periodic {
            period: Time(p),
            offset: Time::ZERO,
        }
    }

    /// The figure-eight system whose dependency graph is cyclic.
    fn looped_system() -> TaskSystem {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(200),
            periodic(40),
            vec![(p1, Time(4)), (p2, Time(4))],
        );
        let t2 = b.add_job(
            "T2",
            Time(200),
            periodic(40),
            vec![(p2, Time(4)), (p1, Time(4))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 2);
        b.set_priority(SubjobRef { job: t2, index: 1 }, 1);
        b.set_priority(SubjobRef { job: t1, index: 1 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        b.build().unwrap()
    }

    #[test]
    fn handles_cyclic_topologies() {
        let sys = looped_system();
        let idx = SubjobIndex::new(&sys);
        assert!(matches!(
            evaluation_order(&sys, &idx),
            Err(AnalysisError::CyclicDependency { .. })
        ));
        let r = analyze_with_loops(&sys, &AnalysisConfig::default(), 8).unwrap();
        // Light load (8/40 per processor): everything comfortably bounded.
        for j in &r.jobs {
            let d = j.e2e_bound.expect("bounded");
            assert!(d >= Time(8), "at least the execution demand: {d:?}");
            assert!(j.schedulable(), "loop at low load must admit: {d:?}");
        }
    }

    #[test]
    fn rounds_only_tighten() {
        let sys = looped_system();
        let cfg = AnalysisConfig::default();
        let r1 = analyze_with_loops(&sys, &cfg, 1).unwrap();
        let r4 = analyze_with_loops(&sys, &cfg, 6).unwrap();
        for k in 0..sys.jobs().len() {
            let (a, b) = (r1.jobs[k].e2e_bound, r4.jobs[k].e2e_bound);
            match (a, b) {
                (Some(a), Some(b)) => assert!(b <= a, "job {k}: {b:?} > {a:?}"),
                (None, _) => {}
                (Some(_), None) => panic!("refinement lost a bound"),
            }
        }
    }

    #[test]
    fn acyclic_systems_also_work() {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spnp);
        b.add_job(
            "T1",
            Time(100),
            periodic(25),
            vec![(p1, Time(3)), (p2, Time(4))],
        );
        b.add_job("T2", Time(100), periodic(30), vec![(p2, Time(5))]);
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        let lo = analyze_with_loops(&sys, &AnalysisConfig::default(), 6).unwrap();
        let direct = crate::analyze_bounds(&sys, &AnalysisConfig::default()).unwrap();
        for k in 0..2 {
            let (a, b) = (
                lo.jobs[k].e2e_bound.expect("bounded"),
                direct.jobs[k].e2e_bound.expect("bounded"),
            );
            // Both sound; the fixpoint variant may be looser but must agree
            // on schedulability here.
            assert!(lo.jobs[k].schedulable() && direct.jobs[k].schedulable());
            let _ = (a, b);
        }
    }

    #[test]
    fn overloaded_loop_is_rejected() {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(20),
            periodic(10),
            vec![(p1, Time(6)), (p2, Time(6))],
        );
        let t2 = b.add_job(
            "T2",
            Time(20),
            periodic(10),
            vec![(p2, Time(6)), (p1, Time(6))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 2);
        b.set_priority(SubjobRef { job: t2, index: 1 }, 1);
        b.set_priority(SubjobRef { job: t1, index: 1 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let r = analyze_with_loops(&sys, &AnalysisConfig::default(), 8).unwrap();
        assert!(!r.all_schedulable());
    }

    #[test]
    fn warm_start_from_own_solution_is_identical_and_converges_in_one_round() {
        let sys = looped_system();
        let cfg = AnalysisConfig::default();
        let (cold, seed) = analyze_with_loops_seeded(&sys, &cfg, 16, None).unwrap();
        // Re-analyzing the same system from its converged seed must converge
        // immediately (a 1-round budget suffices) to the same report.
        let (warm, seed2) = analyze_with_loops_seeded(&sys, &cfg, 1, Some(&seed)).unwrap();
        assert_eq!(format!("{cold}"), format!("{warm}"));
        for (a, b) in seed.bounds.iter().zip(seed2.bounds.iter()) {
            assert_eq!(a.lower, b.lower);
            assert_eq!(a.upper, b.upper);
        }
    }

    #[test]
    fn mismatched_seed_falls_back_to_cold() {
        let sys = looped_system();
        let cfg = AnalysisConfig::default();
        let (_, seed) = analyze_with_loops_seeded(&sys, &cfg, 16, None).unwrap();
        // A frame the seed does not match: different arrival window.
        let other = AnalysisConfig {
            arrival_window: Some(Time(777)),
            ..AnalysisConfig::default()
        };
        let cold = analyze_with_loops(&sys, &other, 16).unwrap();
        let (warm, _) = analyze_with_loops_seeded(&sys, &other, 16, Some(&seed)).unwrap();
        assert_eq!(format!("{cold}"), format!("{warm}"));
    }
}

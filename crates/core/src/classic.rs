//! Classical uniprocessor schedulability results, used as test oracles.
//!
//! * [`rta_uniprocessor`] — the exact response-time analysis of Joseph &
//!   Pandya (1986) / Audsley et al. for synchronous periodic tasks under
//!   preemptive static priorities, extended to multiple pending instances
//!   (Lehoczky's arbitrary-deadline busy-period scan). On a single SPP
//!   processor it must agree with the paper's exact analysis — a strong
//!   cross-check exercised by the integration tests.
//! * [`liu_layland_bound`] — the 1973 utilization bound `n(2^{1/n} − 1)`.

use rta_curves::Time;

/// One synchronous periodic task on a uniprocessor, listed in **descending
/// priority order** (index 0 = highest).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PeriodicTask {
    /// Worst-case execution time.
    pub exec: Time,
    /// Period (= minimum inter-arrival time).
    pub period: Time,
}

/// Exact worst-case response time of task `i` (0-based, priorities descend
/// with the index) under preemptive static-priority scheduling with
/// synchronous release, or `None` if the iteration exceeds `limit`
/// (overload).
///
/// Handles response times beyond the period via the standard busy-period
/// scan over pending instances `q = 0, 1, …`:
/// `w_q = (q+1)·C_i + Σ_hp ⌈w_q/T_h⌉·C_h`, `R = max_q (w_q − q·T_i)`,
/// stopping at the first `q` with `w_q ≤ (q+1)·T_i`.
pub fn rta_uniprocessor(tasks: &[PeriodicTask], i: usize, limit: Time) -> Option<Time> {
    let hp = &tasks[..i];
    let t_i = tasks[i].period;
    let c_i = tasks[i].exec;
    let mut worst = Time::ZERO;
    let mut q: i64 = 0;
    loop {
        // Fixed-point iteration for the q-instance busy window.
        let mut w = c_i * (q + 1);
        loop {
            let mut next = c_i * (q + 1);
            for h in hp {
                let ceil = (w.ticks() + h.period.ticks() - 1).div_euclid(h.period.ticks());
                next += h.exec * ceil;
            }
            if next == w {
                break;
            }
            w = next;
            if w > limit {
                return None;
            }
        }
        worst = worst.max(w - t_i * q);
        if w <= t_i * (q + 1) {
            return Some(worst);
        }
        q += 1;
    }
}

/// The Liu & Layland utilization bound for `n` tasks: a synchronous
/// periodic task set with `Σ C/T` at most this value is schedulable under
/// rate-monotonic priorities.
pub fn liu_layland_bound(n: usize) -> f64 {
    assert!(n >= 1);
    let n = n as f64;
    n * (2f64.powf(1.0 / n) - 1.0)
}

/// Total utilization `Σ C/T` of a task set.
pub fn utilization(tasks: &[PeriodicTask]) -> f64 {
    tasks
        .iter()
        .map(|t| t.exec.ticks() as f64 / t.period.ticks() as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: i64, p: i64) -> PeriodicTask {
        PeriodicTask {
            exec: Time(c),
            period: Time(p),
        }
    }

    #[test]
    fn textbook_example() {
        // T1 (1,4), T2 (2,6), T3 (3,13) — classic RM example.
        let ts = [t(1, 4), t(2, 6), t(3, 13)];
        assert_eq!(rta_uniprocessor(&ts, 0, Time(1000)), Some(Time(1)));
        assert_eq!(rta_uniprocessor(&ts, 1, Time(1000)), Some(Time(3)));
        // T3: w = 3 + ⌈w/4⌉ + 2⌈w/6⌉ → 3,6,8,9,10 → R = 10.
        assert_eq!(rta_uniprocessor(&ts, 2, Time(1000)), Some(Time(10)));
    }

    #[test]
    fn full_utilization_pair() {
        // T1 (3,5), T2 (4,10) at U = 1.0: T2 fills the leftover bandwidth
        // exactly, completing at 10.
        let ts = [t(3, 5), t(4, 10)];
        assert_eq!(rta_uniprocessor(&ts, 1, Time(1000)), Some(Time(10)));
    }

    #[test]
    fn response_beyond_period_uses_busy_window() {
        // Lehoczky's arbitrary-deadline example: T1 (26,70), T2 (62,100).
        // The level-2 busy period spans 7 instances of T2; the worst
        // response (118) occurs at a later instance, not the first.
        let ts = [t(26, 70), t(62, 100)];
        assert_eq!(rta_uniprocessor(&ts, 1, Time(10_000)), Some(Time(118)));
    }

    #[test]
    fn overload_returns_none() {
        let ts = [t(4, 5), t(4, 5)];
        assert_eq!(rta_uniprocessor(&ts, 1, Time(10_000)), None);
    }

    #[test]
    fn liu_layland_values() {
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
        assert!((liu_layland_bound(2) - 0.8284).abs() < 1e-3);
        // n → ∞ limit is ln 2.
        assert!((liu_layland_bound(10_000) - std::f64::consts::LN_2).abs() < 1e-4);
    }

    #[test]
    fn utilization_sum() {
        let ts = [t(1, 4), t(2, 8)];
        assert!((utilization(&ts) - 0.5).abs() < 1e-12);
    }
}

//! Parametric schedulability-region exploration.
//!
//! [`super::critical_scaling`] answers a one-dimensional question: how much
//! uniform execution-time headroom does a system have? For bursty systems
//! the designer's question is usually two-dimensional — *how does that
//! headroom erode as arrival bursts grow?* [`explore_region`] walks an
//! (execution-scale × burst-length) grid and reports, per burst length, the
//! schedulability frontier: the largest scale on the axis that stays
//! schedulable.
//!
//! The whole grid is driven through **one** [`AnalysisSession`]:
//!
//! * moving along the scale axis is [`AnalysisSession::schedulable_at_scale`]
//!   — an in-place exec rewrite that reuses interned pattern curves, carried
//!   fixpoint seeds and the verdict memo;
//! * moving along the burst axis is one [`AnalysisSession::set_arrival`]
//!   delta per bursty job — a structural edit that invalidates exactly what
//!   the new envelope can reach.
//!
//! The walk order puts the delta the session can absorb most cheaply on
//! the **inner** axis. For the exact oracle that is the burst axis: a
//! burst edit dirties only the subjobs on the processors the train
//! crosses, so the session re-derives that cone and reuses every other
//! cached subjob curve and interned envelope verbatim (and re-probing the
//! unchanged scale leaves the caches clean). For the bounds-based oracles
//! — which rebuild their curve sets per analysis and reuse only carried
//! fixpoint seeds and verdict memos — the scale axis is inner, keeping
//! each row on one arrival structure.
//!
//! The analysis frame (arrival window, horizon) is resolved **once**, from
//! the system at the *largest* requested burst length, and pinned for every
//! grid point. A window sized for the widest burst is sound for the
//! narrower ones (it only admits more instances than necessary), and a
//! shared frame keeps the per-row verdicts comparable and the session's
//! caches valid across deltas.
//!
//! Either way the inner axis is scanned **ascending with early exit**: the
//! analyses here are monotone both in a uniform execution scale (scaling up
//! only raises workload curves and blocking terms) and in the burst length
//! (a longer train only raises the arrival envelope), so the first
//! unschedulable point settles the rest of its line. On a 32×32 grid whose
//! frontiers sit mid-axis, roughly half the probes are never run at all.

use crate::config::AnalysisConfig;
use crate::error::AnalysisError;
use crate::sensitivity::Oracle;
use crate::session::{AnalysisSession, SessionStats};
use rta_model::{ArrivalPattern, JobId, TaskSystem};

/// Axes and oracle of one region exploration.
#[derive(Clone, Debug)]
pub struct RegionConfig {
    /// Execution-scale axis, strictly ascending, all positive and finite.
    pub scales: Vec<f64>,
    /// Burst-length axis applied to every [`ArrivalPattern::BurstTrain`]
    /// job (other arrival patterns are left untouched).
    pub burst_lens: Vec<u32>,
    /// Schedulability oracle used at every grid point.
    pub oracle: Oracle,
}

impl RegionConfig {
    /// Evenly spaced axes: `scale_steps` points across `[scale_lo,
    /// scale_hi]` and `burst_steps` integer burst lengths across
    /// `[burst_lo, burst_hi]` (rounded to the lattice and deduplicated, so
    /// fewer than `burst_steps` rows may result when the range is narrow).
    pub fn grid(
        scale_lo: f64,
        scale_hi: f64,
        scale_steps: usize,
        burst_lo: u32,
        burst_hi: u32,
        burst_steps: usize,
        oracle: Oracle,
    ) -> RegionConfig {
        assert!(scale_steps >= 1 && burst_steps >= 1);
        assert!(scale_lo > 0.0 && scale_hi >= scale_lo && scale_hi.is_finite());
        assert!(burst_lo >= 1 && burst_hi >= burst_lo);
        let lerp = |lo: f64, hi: f64, i: usize, n: usize| {
            if n == 1 {
                lo
            } else {
                lo + (hi - lo) * i as f64 / (n - 1) as f64
            }
        };
        let scales = (0..scale_steps)
            .map(|i| lerp(scale_lo, scale_hi, i, scale_steps))
            .collect();
        let mut burst_lens: Vec<u32> = (0..burst_steps)
            .map(|i| lerp(burst_lo as f64, burst_hi as f64, i, burst_steps).round() as u32)
            .collect();
        burst_lens.dedup();
        RegionConfig {
            scales,
            burst_lens,
            oracle,
        }
    }
}

/// One burst-length row of the explored region.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionRow {
    /// Burst length applied to every burst-train job for this row.
    pub burst_len: u32,
    /// Verdict per scale-axis point (aligned with [`RegionReport::scales`]).
    /// Points beyond the first unschedulable point of their grid line are
    /// `false` by monotonicity without having been probed.
    pub schedulable: Vec<bool>,
    /// Largest scale on the axis that is schedulable, if any.
    pub frontier: Option<f64>,
}

/// The explored schedulability region.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionReport {
    /// The scale axis shared by every row.
    pub scales: Vec<f64>,
    /// One row per requested burst length, in axis order.
    pub rows: Vec<RegionRow>,
    /// Grid points actually analyzed (early exit skips the remainder).
    pub probes: usize,
    /// Session reuse counters accumulated over the whole walk.
    pub stats: SessionStats,
}

impl RegionReport {
    /// Serialize the region as a JSON object (hand-rolled — the crate has
    /// no serialization dependency): `scales`, `rows` (each with
    /// `burst_len`, `frontier` — `null` when empty — and the per-scale
    /// `schedulable` mask), and the `probes` count.
    pub fn to_json(&self) -> String {
        fn join<T, F: FnMut(&T) -> String>(items: &[T], f: F) -> String {
            items.iter().map(f).collect::<Vec<_>>().join(",")
        }
        let mut s = String::from("{\n  \"scales\": [");
        s.push_str(&join(&self.scales, |x| format!("{x}")));
        s.push_str("],\n  \"rows\": [\n");
        let rows = join(&self.rows, |r| {
            let frontier = r
                .frontier
                .map_or_else(|| "null".to_string(), |x| format!("{x}"));
            let mask = join(&r.schedulable, |b| b.to_string());
            format!(
                "    {{\"burst_len\": {}, \"frontier\": {frontier}, \"schedulable\": [{mask}]}}",
                r.burst_len
            )
        });
        s.push_str(&rows.replace("},", "},\n"));
        s.push_str(&format!("\n  ],\n  \"probes\": {}\n}}\n", self.probes));
        s
    }
}

/// `pat` with its burst length replaced, leaving every other arrival
/// pattern (and the train's gap/period/offset) untouched.
fn with_burst_len(pat: &ArrivalPattern, len: u32) -> ArrivalPattern {
    match *pat {
        ArrivalPattern::BurstTrain {
            intra_gap,
            train_period,
            offset,
            ..
        } => ArrivalPattern::BurstTrain {
            burst_len: len,
            intra_gap,
            train_period,
            offset,
        },
        ref other => other.clone(),
    }
}

/// Ids of the jobs whose arrival is a burst train.
fn bursty_jobs(sys: &TaskSystem) -> Vec<JobId> {
    sys.jobs()
        .iter()
        .enumerate()
        .filter(|(_, j)| matches!(j.arrival, ArrivalPattern::BurstTrain { .. }))
        .map(|(k, _)| JobId(k))
        .collect()
}

/// Walk the (scale × burst-length) schedulability region of `sys` through
/// one incremental [`AnalysisSession`] (see the module docs for the walk
/// order and frame-pinning argument).
///
/// Burst lengths are applied to every burst-train job; a system without
/// burst trains degenerates to identical rows. Requested burst lengths that
/// would make a job's trains overlap are rejected up front with
/// [`rta_model::ModelError::OverlappingBursts`] rather than failing mid-walk.
pub fn explore_region(
    sys: &TaskSystem,
    cfg: &AnalysisConfig,
    region: &RegionConfig,
) -> Result<RegionReport, AnalysisError> {
    assert!(!region.scales.is_empty() && !region.burst_lens.is_empty());
    assert!(
        region
            .scales
            .windows(2)
            .all(|w| w[0] < w[1] && w[0].is_finite())
            && region.scales[0] > 0.0
            && region.scales[region.scales.len() - 1].is_finite(),
        "scales must be strictly ascending, positive and finite"
    );
    assert!(
        region.burst_lens.iter().all(|&b| b >= 1),
        "burst lengths must be at least 1"
    );

    let bursty = bursty_jobs(sys);

    // Widest-burst variant: validates every requested row up front (overlap
    // is monotone in the burst length) and fixes the shared frame.
    let max_burst = *region.burst_lens.iter().max().unwrap();
    let mut frame_sys = sys.clone();
    for &id in &bursty {
        frame_sys.set_arrival(id, with_burst_len(&frame_sys.job(id).arrival, max_burst));
    }
    frame_sys.validate(false)?;
    let (window, horizon) = cfg.resolve(&frame_sys);
    let pinned = AnalysisConfig {
        arrival_window: Some(window),
        horizon: Some(horizon),
        ..cfg.clone()
    };

    let mut session = AnalysisSession::pinned(sys.clone(), pinned);
    let (ns, nb) = (region.scales.len(), region.burst_lens.len());
    let mut masks = vec![vec![false; ns]; nb];
    let mut probes = 0usize;
    if matches!(region.oracle, Oracle::Exact) {
        // Scale-outer, burst-inner: the inner delta is one `set_arrival`
        // per bursty job, whose dirty cone covers only the processors the
        // burst train crosses — the exact path's cached subjob curves and
        // interned envelopes of every untouched job are reused verbatim,
        // and `scale_exec` at an unchanged factor leaves them all clean.
        // Both axes are monotone, so a column stops at its first
        // unschedulable burst, and the first column that fails at the
        // smallest burst settles every later column.
        'columns: for (si, &scale) in region.scales.iter().enumerate() {
            for (bi, &burst_len) in region.burst_lens.iter().enumerate() {
                for &id in &bursty {
                    let pat = with_burst_len(&session.system().job(id).arrival, burst_len);
                    session.set_arrival(id, pat);
                }
                probes += 1;
                if session.schedulable_at_scale(scale, region.oracle)? {
                    masks[bi][si] = true;
                } else if bi == 0 {
                    break 'columns; // wider scales fail everywhere too
                } else {
                    break; // monotone in the burst: the rest of the column fails
                }
            }
        }
    } else {
        // Burst-outer, scale-inner: bounds-based oracles have no per-subjob
        // curve cache to exploit, so the walk keeps each row on one arrival
        // structure and lets the session's carried fixpoint seeds and
        // verdict memo absorb the scale probes.
        for (bi, &burst_len) in region.burst_lens.iter().enumerate() {
            for &id in &bursty {
                let pat = with_burst_len(&session.system().job(id).arrival, burst_len);
                session.set_arrival(id, pat);
            }
            for (si, &scale) in region.scales.iter().enumerate() {
                probes += 1;
                if session.schedulable_at_scale(scale, region.oracle)? {
                    masks[bi][si] = true;
                } else {
                    break; // monotone in the scale: the rest of the row fails
                }
            }
        }
    }
    let rows = region
        .burst_lens
        .iter()
        .zip(masks)
        .map(|(&burst_len, schedulable)| {
            let frontier = schedulable
                .iter()
                .rposition(|&s| s)
                .map(|i| region.scales[i]);
            RegionRow {
                burst_len,
                schedulable,
                frontier,
            }
        })
        .collect();
    Ok(RegionReport {
        scales: region.scales.clone(),
        rows,
        probes,
        stats: session.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_curves::Time;
    use rta_model::priority::{assign_priorities, PriorityPolicy};
    use rta_model::{ModelError, SchedulerKind, SystemBuilder};

    /// One SPP processor, a burst-train job and a periodic victim.
    fn bursty_sys(intra_gap: i64, train_period: i64) -> TaskSystem {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        b.add_job(
            "burst",
            Time(40),
            ArrivalPattern::BurstTrain {
                burst_len: 1,
                intra_gap: Time(intra_gap),
                train_period: Time(train_period),
                offset: Time::ZERO,
            },
            vec![(p, Time(4))],
        );
        b.add_job(
            "victim",
            Time(30),
            ArrivalPattern::Periodic {
                period: Time(30),
                offset: Time::ZERO,
            },
            vec![(p, Time(6))],
        );
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::RateMonotonic).unwrap();
        sys
    }

    #[test]
    fn grid_axes_are_even_and_deduplicated() {
        let r = RegionConfig::grid(0.5, 2.0, 4, 1, 8, 8, Oracle::Exact);
        assert_eq!(r.scales, vec![0.5, 1.0, 1.5, 2.0]);
        assert_eq!(r.burst_lens, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        // A narrow burst range collapses duplicate rounded points.
        let r = RegionConfig::grid(1.0, 1.0, 1, 1, 2, 5, Oracle::Exact);
        assert_eq!(r.scales, vec![1.0]);
        assert_eq!(r.burst_lens, vec![1, 2]);
    }

    #[test]
    fn frontier_is_monotone_and_matches_cold_analysis() {
        let sys = bursty_sys(5, 120);
        let cfg = AnalysisConfig::default();
        let region = RegionConfig {
            scales: vec![0.25, 0.5, 1.0, 2.0, 4.0],
            burst_lens: vec![1, 3, 6],
            oracle: Oracle::Exact,
        };
        let report = explore_region(&sys, &cfg, &region).unwrap();
        assert_eq!(report.rows.len(), 3);
        assert!(report.probes <= 15);

        // Growing the burst can only shrink the frontier.
        let frontiers: Vec<f64> = report
            .rows
            .iter()
            .map(|r| r.frontier.expect("schedulable somewhere"))
            .collect();
        assert!(frontiers.windows(2).all(|w| w[1] <= w[0]), "{frontiers:?}");

        // Every cell (probed or settled by monotone early exit) must agree
        // with a cold analysis of the correspondingly edited system, under
        // the same pinned frame the walk used.
        let max_burst = 6;
        let mut frame_sys = sys.clone();
        for id in bursty_jobs(&sys) {
            frame_sys.set_arrival(id, with_burst_len(&frame_sys.job(id).arrival, max_burst));
        }
        let (window, horizon) = cfg.resolve(&frame_sys);
        let pinned = AnalysisConfig {
            arrival_window: Some(window),
            horizon: Some(horizon),
            ..cfg.clone()
        };
        for row in &report.rows {
            for (i, &scale) in report.scales.iter().enumerate() {
                let mut cold = sys.clone();
                for id in bursty_jobs(&sys) {
                    cold.set_arrival(id, with_burst_len(&cold.job(id).arrival, row.burst_len));
                }
                let cold = cold.with_scaled_exec(scale);
                let verdict = crate::analyze_exact_spp(&cold, &pinned)
                    .unwrap()
                    .all_schedulable();
                assert_eq!(
                    verdict, row.schedulable[i],
                    "burst {} scale {scale}",
                    row.burst_len
                );
            }
        }
    }

    /// Two SPNP stages crossed by the burst-train flow, each with a local
    /// periodic job — the loop-tolerant fixpoint's home turf.
    fn bursty_spnp_pipeline() -> TaskSystem {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("stage-1", SchedulerKind::Spnp);
        let p2 = b.add_processor("stage-2", SchedulerKind::Spnp);
        b.add_job(
            "bursty-flow",
            Time(300),
            ArrivalPattern::BurstTrain {
                burst_len: 1,
                intra_gap: Time(8),
                train_period: Time(400),
                offset: Time::ZERO,
            },
            vec![(p1, Time(12)), (p2, Time(9))],
        );
        b.add_job(
            "local-1",
            Time(80),
            ArrivalPattern::Periodic {
                period: Time(80),
                offset: Time::ZERO,
            },
            vec![(p1, Time(16))],
        );
        b.add_job(
            "local-2",
            Time(120),
            ArrivalPattern::Periodic {
                period: Time(120),
                offset: Time(5),
            },
            vec![(p2, Time(20))],
        );
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        sys
    }

    #[test]
    fn loops_oracle_cells_match_cold_fixpoint() {
        // The warm-seeded session fixpoint must reach the same verdicts as
        // a cold `analyze_with_loops` per cell — the property the
        // `region/32x32_grid` vs `_cold` bench pair relies on.
        let sys = bursty_spnp_pipeline();
        let cfg = AnalysisConfig::default();
        let rounds = 24;
        let region = RegionConfig {
            scales: vec![0.25, 0.5, 1.0, 1.5, 2.5],
            burst_lens: vec![1, 4, 8],
            oracle: Oracle::Loops { max_rounds: rounds },
        };
        let report = explore_region(&sys, &cfg, &region).unwrap();
        assert!(report.stats.warm_starts > 0, "{:?}", report.stats);

        let mut frame_sys = sys.clone();
        for id in bursty_jobs(&sys) {
            frame_sys.set_arrival(id, with_burst_len(&frame_sys.job(id).arrival, 8));
        }
        let (window, horizon) = cfg.resolve(&frame_sys);
        let pinned = AnalysisConfig {
            arrival_window: Some(window),
            horizon: Some(horizon),
            ..cfg.clone()
        };
        for row in &report.rows {
            for (i, &scale) in report.scales.iter().enumerate() {
                let mut cold = sys.clone();
                for id in bursty_jobs(&sys) {
                    cold.set_arrival(id, with_burst_len(&cold.job(id).arrival, row.burst_len));
                }
                let cold = cold.with_scaled_exec(scale);
                let verdict = crate::fixpoint::analyze_with_loops(&cold, &pinned, rounds)
                    .unwrap()
                    .all_schedulable();
                assert_eq!(
                    verdict, row.schedulable[i],
                    "burst {} scale {scale}",
                    row.burst_len
                );
            }
        }
    }

    #[test]
    fn rejects_burst_lengths_that_overlap_trains() {
        // Extent at burst 4 is 3·10 = 30 ≥ train period 25.
        let sys = bursty_sys(10, 25);
        let region = RegionConfig {
            scales: vec![1.0],
            burst_lens: vec![1, 2, 4],
            oracle: Oracle::Exact,
        };
        let err = explore_region(&sys, &AnalysisConfig::default(), &region).unwrap_err();
        assert!(matches!(
            err,
            AnalysisError::Model(ModelError::OverlappingBursts { job }) if job.0 == 0
        ));
    }

    #[test]
    fn json_has_axes_rows_and_probe_count() {
        let sys = bursty_sys(5, 120);
        let region = RegionConfig {
            scales: vec![0.5, 1.0],
            burst_lens: vec![1, 2],
            oracle: Oracle::Exact,
        };
        let report = explore_region(&sys, &AnalysisConfig::default(), &region).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"scales\": [0.5,1]"), "{json}");
        assert_eq!(json.matches("\"burst_len\"").count(), 2, "{json}");
        assert!(json.contains("\"probes\""), "{json}");
        assert!(json.contains("\"schedulable\": ["), "{json}");
    }
}

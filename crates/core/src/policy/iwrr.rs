//! Interleaved weighted round-robin behind the policy seam — the fourth
//! discipline, landed purely against [`ServicePolicy`] (no driver edits).
//!
//! Following the network-calculus analysis of IWRR (Tabatabaee, Le Boudec
//! & Boyer, arXiv:2003.08372), adapted to this codebase's instance-granular
//! non-preemptive server: each serving opportunity of subjob `i` processes
//! one whole instance (`τ_i` ticks), and one *round* interleaves `w_max`
//! cycles, cycle `c` serving every flow with weight `w_j ≥ c` once.
//!
//! While every flow is backlogged a round lasts at most
//! `L = Σ_j w_j · τ_j` ticks, and flow `i` is served exactly `w_i` times
//! per round. Any window of length `u` therefore contains at least
//! `⌊u/L⌋ − 1` complete rounds, giving the **strict service curve**
//!
//! ```text
//! β_i(u) = w_i · τ_i · max(0, ⌊u/L⌋ − 1)
//! ```
//!
//! `β_i` is a lower bound on service *while backlogged*, so the
//! busy-period argument of Theorem 3 yields the guaranteed service
//!
//! ```text
//! S̲(t) = min( c̄(t), min_{0 ≤ s ≤ t} ( c̄(s⁻) + β_i(t − s) ) )
//! ```
//!
//! — a min-plus convolution ([`rta_curves::convolution::convolve`]) of the
//! left-shifted workload with the staircase. Note the staircase is **not**
//! subadditive, so the availability-increment form used by SPP/SPNP
//! (`B(t) − B(s)`) would be unsound here; the convolution form is the
//! standard sound composition. The upper bound is the information-free
//! `min(t, c̄(t))`: non-preemptive round-robin guarantees nothing tighter
//! without peer *service* curves, and the looseness only feeds the next
//! hop's arrival envelope conservatively.

use super::{BoundsInputs, PeerInputs, PolicyContext, ReadySet, ServicePolicy, SimScheduler};
use crate::error::AnalysisError;
use crate::spnp::ServiceBounds;
use rta_curves::convolution::convolve;
use rta_curves::{Curve, Time};
use rta_model::{ProcessorId, SchedulerKind, SubjobRef, TaskSystem};

/// Per-processor IWRR state: the worst-case round length `L`.
#[derive(Clone, Debug)]
pub struct IwrrContext {
    /// `L = Σ_j w_j · τ_j` over all subjobs sharing the processor.
    pub round_len: i64,
}

/// Interleaved weighted round-robin (non-preemptive, instance-granular).
pub struct IwrrPolicy;

impl ServicePolicy for IwrrPolicy {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Iwrr
    }

    fn peer_inputs(&self) -> PeerInputs {
        PeerInputs::SharedWorkloads
    }

    fn build_context(
        &self,
        sys: &TaskSystem,
        _p: ProcessorId,
        peers: &[SubjobRef],
        _peer_workloads: &[&Curve],
        _horizon: Time,
    ) -> Result<Option<PolicyContext>, AnalysisError> {
        let round_len = peers
            .iter()
            .map(|&o| {
                let s = sys.subjob(o);
                s.weight() as i64 * s.exec.ticks()
            })
            .sum();
        Ok(Some(PolicyContext::new(IwrrContext { round_len })))
    }

    fn service_bounds(&self, inputs: &BoundsInputs<'_>) -> Result<ServiceBounds, AnalysisError> {
        let ctx = inputs
            .ctx
            .and_then(|c| c.downcast_ref::<IwrrContext>())
            .ok_or(AnalysisError::MissingPolicyContext {
                processor: inputs.processor,
            })?;
        let l = ctx.round_len.max(1);
        let quantum = inputs.weight as i64 * inputs.tau.ticks();

        // β(u) = quantum · max(0, ⌊u/L⌋ − 1): jumps at u = 2L, 3L, …
        let mut pts = Vec::new();
        let mut k = 1i64;
        while (k + 1) * l <= inputs.horizon.ticks() {
            pts.push((Time((k + 1) * l), k * quantum));
            k += 1;
        }
        let beta = Curve::step_from_points(0, &pts);

        let c_prev = inputs.workload.shift_right(Time::ONE, 0);
        let lower = convolve(&c_prev, &beta, inputs.horizon)
            .min_with(inputs.workload)
            .min_with(&Curve::identity())
            .clamp_min(0)
            .running_max();
        let upper = Curve::identity()
            .min_with(inputs.workload)
            .clamp_min(0)
            .running_max()
            .max_with(&lower);
        Ok(ServiceBounds { lower, upper })
    }

    fn sim_scheduler(&self, sys: &TaskSystem, p: ProcessorId) -> Box<dyn SimScheduler> {
        let flows = sys.subjobs_on(p);
        let weights: Vec<u32> = flows.iter().map(|&r| sys.subjob(r).weight()).collect();
        let wmax = weights.iter().copied().max().unwrap_or(1);
        Box::new(IwrrSim {
            flows,
            weights,
            wmax,
            pos: 0,
            cycle: 1,
        })
    }
}

/// The interleaved round cursor: cycle `c` visits each flow in list order
/// and serves those with `w ≥ c`; flows with an empty queue are skipped
/// instantly (work conservation), so the cursor only advances on visits.
struct IwrrSim {
    flows: Vec<SubjobRef>,
    weights: Vec<u32>,
    wmax: u32,
    pos: usize,
    cycle: u32,
}

impl SimScheduler for IwrrSim {
    fn pick_idx(&mut self, _sys: &TaskSystem, ready: &ReadySet<'_>) -> Option<usize> {
        if ready.is_empty() || self.flows.is_empty() {
            return None;
        }
        // One full sweep covers every (flow, cycle) slot; any backlogged
        // flow is eligible in cycle 1, so the sweep always finds work.
        for _ in 0..self.flows.len() as u64 * self.wmax as u64 {
            let flow = self.flows[self.pos];
            let eligible = self.cycle <= self.weights[self.pos];
            let cand = if eligible {
                ready
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.subjob == flow)
                    .min_by_key(|(_, c)| (c.hop_release, c.seq))
                    .map(|(i, _)| i)
            } else {
                None
            };
            self.pos += 1;
            if self.pos == self.flows.len() {
                self.pos = 0;
                self.cycle = if self.cycle >= self.wmax {
                    1
                } else {
                    self.cycle + 1
                };
            }
            if let Some(i) = cand {
                return Some(i);
            }
        }
        // Unreachable for instances of registered flows; keep a sound
        // fallback instead of a panicking path.
        (0..ready.len()).min_by_key(|&i| (ready[i].hop_release, ready[i].seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpnpAvailability;
    use crate::policy::{ReadyInstance, ReadySet};
    use rta_model::{ArrivalPattern, SystemBuilder};

    fn two_flow_sys(w1: u32, w2: u32) -> (TaskSystem, ProcessorId) {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Iwrr);
        let t1 = b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Periodic {
                period: Time(20),
                offset: Time::ZERO,
            },
            vec![(p, Time(3))],
        );
        let t2 = b.add_job(
            "T2",
            Time(100),
            ArrivalPattern::Periodic {
                period: Time(20),
                offset: Time::ZERO,
            },
            vec![(p, Time(4))],
        );
        b.set_weight(SubjobRef { job: t1, index: 0 }, w1);
        b.set_weight(SubjobRef { job: t2, index: 0 }, w2);
        (b.build().unwrap(), p)
    }

    fn bounds_for(sys: &TaskSystem, p: ProcessorId, r: SubjobRef, horizon: Time) -> ServiceBounds {
        let peers = sys.subjobs_on(p);
        let window = Time(60);
        let workloads: Vec<Curve> = peers
            .iter()
            .map(|&o| {
                sys.job(o.job)
                    .arrival
                    .arrival_curve(window)
                    .scale(sys.subjob(o).exec.ticks())
            })
            .collect();
        let refs: Vec<&Curve> = workloads.iter().collect();
        let ctx = IwrrPolicy
            .build_context(sys, p, &peers, &refs, horizon)
            .unwrap()
            .unwrap();
        let i = peers.iter().position(|&o| o == r).unwrap();
        IwrrPolicy
            .service_bounds(&BoundsInputs {
                workload: &workloads[i],
                tau: sys.subjob(r).exec,
                weight: sys.subjob(r).weight(),
                blocking: Time::ZERO,
                hp_lower: &[],
                hp_upper: &[],
                variant: SpnpAvailability::Conservative,
                ctx: Some(&ctx),
                horizon,
                processor: p,
            })
            .unwrap()
    }

    #[test]
    fn round_length_sums_weighted_exec() {
        let (sys, p) = two_flow_sys(2, 1);
        let peers = sys.subjobs_on(p);
        let ctx = IwrrPolicy
            .build_context(&sys, p, &peers, &[], Time(100))
            .unwrap()
            .unwrap();
        let ctx = ctx.downcast_ref::<IwrrContext>().unwrap();
        // L = 2·3 + 1·4 = 10.
        assert_eq!(ctx.round_len, 10);
    }

    #[test]
    fn bounds_are_sane_and_guarantee_progress() {
        let (sys, p) = two_flow_sys(2, 1);
        let r = SubjobRef {
            job: rta_model::JobId(0),
            index: 0,
        };
        let horizon = Time(400);
        let b = bounds_for(&sys, p, r, horizon);
        assert!(b.lower.is_nondecreasing());
        assert!(b.upper.is_nondecreasing());
        for t in 0..=horizon.ticks() {
            let t = Time(t);
            assert!(b.lower.eval(t) <= b.upper.eval(t), "ordered at {t}");
            assert!(b.lower.eval(t) >= 0);
            assert!(b.upper.eval(t) <= t.ticks());
        }
        assert_eq!(b.lower.eval(Time::ZERO), 0);
        // L = 10; a continuously-backlogged period of 2L guarantees one
        // full round: flow 1's first instance (workload jump of 3 at t=0)
        // is certainly served within 2L = 20.
        assert!(b.lower.eval(Time(20)) >= 3, "{}", b.lower.eval(Time(20)));
    }

    #[test]
    fn heavier_weight_drains_a_burst_sooner() {
        // Under sustained backlog the guarantee is governed by the
        // per-round quantum w·τ out of the round length L; a heavier flow
        // must be guaranteed to drain a burst no later than a light one.
        // (Pointwise domination does NOT hold: a heavier self-weight also
        // lengthens L, delaying the earliest guaranteed service.)
        fn burst_sys(w1: u32) -> (TaskSystem, ProcessorId) {
            let mut b = SystemBuilder::new();
            let p = b.add_processor("P1", SchedulerKind::Iwrr);
            let t1 = b.add_job(
                "T1",
                Time(400),
                ArrivalPattern::Trace(vec![Time::ZERO; 8]),
                vec![(p, Time(3))],
            );
            b.add_job(
                "T2",
                Time(400),
                ArrivalPattern::Periodic {
                    period: Time(20),
                    offset: Time::ZERO,
                },
                vec![(p, Time(4))],
            );
            b.set_weight(SubjobRef { job: t1, index: 0 }, w1);
            (b.build().unwrap(), p)
        }
        let r = SubjobRef {
            job: rta_model::JobId(0),
            index: 0,
        };
        let horizon = Time(400);
        let total = 8 * 3;
        let drain = |sys: &TaskSystem, p| {
            let b = bounds_for(sys, p, r, horizon);
            (0..=horizon.ticks())
                .find(|&t| b.lower.eval(Time(t)) >= total)
                .expect("burst drains within the horizon")
        };
        let (light_sys, p) = burst_sys(1);
        let (heavy_sys, _) = burst_sys(3);
        let light = drain(&light_sys, p);
        let heavy = drain(&heavy_sys, p);
        assert!(heavy < light, "heavy {heavy} !< light {light}");
    }

    #[test]
    fn sim_cursor_interleaves_by_weight() {
        let (sys, p) = two_flow_sys(2, 1);
        let mut sched = IwrrPolicy.sim_scheduler(&sys, p);
        let f1 = SubjobRef {
            job: rta_model::JobId(0),
            index: 0,
        };
        let f2 = SubjobRef {
            job: rta_model::JobId(1),
            index: 0,
        };
        let mk = |subjob, seq| ReadyInstance {
            subjob,
            hop_release: Time::ZERO,
            seq,
            prio: u32::MAX,
        };
        // Both flows deeply backlogged: a full round serves f1, f2 (cycle
        // 1), then f1 again (cycle 2, f2's weight exhausted), repeating.
        let views = vec![mk(f1, 0), mk(f1, 1), mk(f1, 2), mk(f2, 3), mk(f2, 4)];
        let ready = ReadySet::new(&views);
        let order: Vec<SubjobRef> = (0..3)
            .map(|_| {
                let i = sched.pick_idx(&sys, &ready).unwrap();
                ready[i].subjob
            })
            .collect();
        assert_eq!(order, vec![f1, f2, f1]);
        // Next round starts over at cycle 1.
        let i = sched.pick_idx(&sys, &ready).unwrap();
        assert_eq!(ready[i].subjob, f1);
        let i = sched.pick_idx(&sys, &ready).unwrap();
        assert_eq!(ready[i].subjob, f2);
    }

    #[test]
    fn sim_cursor_skips_empty_queues() {
        let (sys, p) = two_flow_sys(2, 1);
        let mut sched = IwrrPolicy.sim_scheduler(&sys, p);
        let f2 = SubjobRef {
            job: rta_model::JobId(1),
            index: 0,
        };
        // Only flow 2 backlogged: every pick must serve it immediately.
        let views = vec![ReadyInstance {
            subjob: f2,
            hop_release: Time(5),
            seq: 9,
            prio: u32::MAX,
        }];
        let ready = ReadySet::new(&views);
        for _ in 0..4 {
            assert_eq!(sched.pick_idx(&sys, &ready), Some(0));
        }
    }
}

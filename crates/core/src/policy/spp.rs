//! Preemptive static priorities behind the policy seam.
//!
//! Delegates the math to [`crate::spp`] (exact Theorem 3) and
//! [`crate::spnp::spnp_bounds`] with a zero blocking term (Theorems 5/6
//! degenerate to Theorem 3 with bounded inputs — see the [`crate::spnp`]
//! module docs).

use super::{
    BoundsInputs, FastPath, PeerInputs, ReadyInstance, ReadySet, ServicePolicy, SimScheduler,
    SoaBoundsInputs,
};
use crate::error::AnalysisError;
use crate::spnp::SoaServiceBounds;
use crate::spnp::{spnp_bounds, spnp_bounds_into, spnp_bounds_soa_into, ServiceBounds};
use rta_curves::{Curve, Scratch};
use rta_model::{ProcessorId, SchedulerKind, TaskSystem};

/// Static-priority preemptive (Theorem 3).
pub struct SppPolicy;

impl ServicePolicy for SppPolicy {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Spp
    }

    fn peer_inputs(&self) -> PeerInputs {
        PeerInputs::HigherPriorityServices
    }

    fn preemptive(&self) -> bool {
        true
    }

    fn supports_exact(&self) -> bool {
        true
    }

    fn exact_service(&self, workload: &Curve, hp_services: &[&Curve]) -> Option<Curve> {
        Some(crate::spp::exact_service(workload, hp_services))
    }

    fn service_bounds(&self, inputs: &BoundsInputs<'_>) -> Result<ServiceBounds, AnalysisError> {
        spnp_bounds(
            inputs.workload,
            inputs.hp_lower,
            inputs.hp_upper,
            inputs.blocking,
            inputs.variant,
        )
        .map_err(AnalysisError::from)
    }

    fn service_bounds_into(
        &self,
        inputs: &BoundsInputs<'_>,
        scratch: &mut Scratch,
        out: &mut ServiceBounds,
    ) -> Result<(), AnalysisError> {
        spnp_bounds_into(
            inputs.workload,
            inputs.hp_lower,
            inputs.hp_upper,
            inputs.blocking,
            inputs.variant,
            scratch,
            out,
        )
        .map_err(AnalysisError::from)
    }

    fn service_bounds_soa_into(
        &self,
        inputs: &SoaBoundsInputs<'_>,
        scratch: &mut Scratch,
        out: &mut SoaServiceBounds,
    ) -> Result<(), AnalysisError> {
        spnp_bounds_soa_into(
            inputs.workload,
            inputs.hp_lower,
            inputs.hp_upper,
            inputs.blocking,
            inputs.variant,
            scratch,
            out,
        )
        .map_err(AnalysisError::from)
    }

    fn sim_scheduler(&self, _sys: &TaskSystem, _p: ProcessorId) -> Box<dyn SimScheduler> {
        Box::new(PrioritySim { preemptive: true })
    }
}

/// Dispatch by static priority; shared by SPP (preemptive) and SPNP.
/// Ties break by hop release time, then release sequence.
pub(super) struct PrioritySim {
    pub(super) preemptive: bool,
}

impl SimScheduler for PrioritySim {
    fn pick_idx(&mut self, _sys: &TaskSystem, ready: &ReadySet<'_>) -> Option<usize> {
        (0..ready.len()).min_by_key(|&i| {
            let inst = &ready[i];
            (inst.prio, inst.hop_release.ticks(), inst.seq)
        })
    }

    fn preempts(&self, _sys: &TaskSystem, running: &ReadyInstance, ready: &ReadySet<'_>) -> bool {
        if !self.preemptive {
            return false;
        }
        ready.iter().any(|c| c.prio < running.prio)
    }

    fn reset(&mut self, _sys: &TaskSystem, _p: ProcessorId) -> bool {
        true // stateless
    }

    fn fast_path(&self) -> FastPath {
        FastPath::PrioMin {
            preemptive: self.preemptive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::policy_for;
    use super::*;
    use crate::config::SpnpAvailability;
    use rta_curves::Time;

    #[test]
    fn bounds_match_the_kernel_verbatim() {
        let c = Curve::from_event_times(&[Time(0), Time(10)]).scale(4);
        let via_policy = policy_for(SchedulerKind::Spp)
            .service_bounds(&BoundsInputs {
                workload: &c,
                tau: Time(4),
                weight: 1,
                blocking: Time::ZERO,
                hp_lower: &[],
                hp_upper: &[],
                variant: SpnpAvailability::Conservative,
                ctx: None,
                horizon: Time(100),
                processor: ProcessorId(0),
            })
            .unwrap();
        let direct = spnp_bounds(&c, &[], &[], Time::ZERO, SpnpAvailability::Conservative).unwrap();
        assert_eq!(via_policy.lower, direct.lower);
        assert_eq!(via_policy.upper, direct.upper);
    }

    #[test]
    fn exact_matches_theorem_3_kernel() {
        let c = Curve::from_event_times(&[Time(0), Time(7)]).scale(3);
        let via_policy = SppPolicy.exact_service(&c, &[]).unwrap();
        assert_eq!(via_policy, crate::spp::exact_service(&c, &[]));
    }
}

//! First-come-first-served behind the policy seam.
//!
//! The per-processor state (Theorem 7's utilization function and the
//! extended-inverse of the total workload) lives in a
//! [`crate::fcfs::FcfsProcessor`] wrapped in a [`PolicyContext`]; the
//! Theorem 8/9 bounds delegate to
//! [`crate::fcfs::FcfsProcessor::service_bounds`].

use super::{
    BoundsInputs, FastPath, PeerInputs, PolicyContext, ReadySet, ServicePolicy, SimScheduler,
};
use crate::error::AnalysisError;
use crate::fcfs::FcfsProcessor;
use crate::spnp::ServiceBounds;
use rta_curves::{Curve, Time};
use rta_model::{ProcessorId, SchedulerKind, SubjobRef, TaskSystem};

/// First-come-first-served (Theorems 7–9).
pub struct FcfsPolicy;

impl ServicePolicy for FcfsPolicy {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Fcfs
    }

    fn peer_inputs(&self) -> PeerInputs {
        PeerInputs::SharedWorkloads
    }

    fn build_context(
        &self,
        _sys: &TaskSystem,
        _p: ProcessorId,
        _peers: &[SubjobRef],
        peer_workloads: &[&Curve],
        horizon: Time,
    ) -> Result<Option<PolicyContext>, AnalysisError> {
        let ctx = FcfsProcessor::new(peer_workloads, horizon)?;
        Ok(Some(PolicyContext::new(ctx)))
    }

    fn service_bounds(&self, inputs: &BoundsInputs<'_>) -> Result<ServiceBounds, AnalysisError> {
        let ctx = inputs
            .ctx
            .and_then(|c| c.downcast_ref::<FcfsProcessor>())
            .ok_or(AnalysisError::MissingPolicyContext {
                processor: inputs.processor,
            })?;
        ctx.service_bounds(inputs.workload, inputs.tau)
            .map_err(AnalysisError::from)
    }

    fn sim_scheduler(&self, _sys: &TaskSystem, _p: ProcessorId) -> Box<dyn SimScheduler> {
        Box::new(FcfsSim)
    }
}

/// Dispatch in hop-release order; ties break by job index, then sequence.
struct FcfsSim;

impl SimScheduler for FcfsSim {
    fn pick_idx(&mut self, _sys: &TaskSystem, ready: &ReadySet<'_>) -> Option<usize> {
        (0..ready.len()).min_by_key(|&i| {
            let inst = &ready[i];
            (inst.hop_release.ticks(), inst.subjob.job.0 as i64, inst.seq)
        })
    }

    fn reset(&mut self, _sys: &TaskSystem, _p: ProcessorId) -> bool {
        true // stateless
    }

    fn fast_path(&self) -> FastPath {
        FastPath::FifoMin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpnpAvailability;

    #[test]
    fn missing_context_is_an_honest_error() {
        let c = Curve::from_event_times(&[Time(0)]).scale(3);
        let err = FcfsPolicy
            .service_bounds(&BoundsInputs {
                workload: &c,
                tau: Time(3),
                weight: 1,
                blocking: Time::ZERO,
                hp_lower: &[],
                hp_upper: &[],
                variant: SpnpAvailability::Conservative,
                ctx: None,
                horizon: Time(50),
                processor: ProcessorId(7),
            })
            .unwrap_err();
        assert!(matches!(
            err,
            AnalysisError::MissingPolicyContext { processor } if processor == ProcessorId(7)
        ));
    }

    #[test]
    fn bounds_match_the_kernel_verbatim() {
        let ca = Curve::from_event_times(&[Time(0)]).scale(4);
        let cb = Curve::from_event_times(&[Time(2)]).scale(4);
        let horizon = Time(50);
        let direct_ctx = FcfsProcessor::new(&[&ca, &cb], horizon).unwrap();
        let direct = direct_ctx.service_bounds(&ca, Time(4)).unwrap();

        let ctx = PolicyContext::new(FcfsProcessor::new(&[&ca, &cb], horizon).unwrap());
        let via_policy = FcfsPolicy
            .service_bounds(&BoundsInputs {
                workload: &ca,
                tau: Time(4),
                weight: 1,
                blocking: Time::ZERO,
                hp_lower: &[],
                hp_upper: &[],
                variant: SpnpAvailability::Conservative,
                ctx: Some(&ctx),
                horizon,
                processor: ProcessorId(0),
            })
            .unwrap();
        assert_eq!(via_policy.lower, direct.lower);
        assert_eq!(via_policy.upper, direct.upper);
    }
}

//! Non-preemptive static priorities behind the policy seam.
//!
//! Delegates to [`crate::spnp::spnp_bounds`] (Theorems 5/6) with the
//! Eq. 15 blocking term supplied by [`ServicePolicy::blocking`].

use super::spp::PrioritySim;
use super::{BoundsInputs, PeerInputs, ServicePolicy, SimScheduler, SoaBoundsInputs};
use crate::error::AnalysisError;
use crate::spnp::{
    spnp_bounds, spnp_bounds_into, spnp_bounds_soa_into, ServiceBounds, SoaServiceBounds,
};
use rta_curves::{Scratch, Time};
use rta_model::{ProcessorId, SchedulerKind, SubjobRef, TaskSystem};

/// Static-priority non-preemptive (Eq. 15, Theorems 5/6).
pub struct SpnpPolicy;

impl ServicePolicy for SpnpPolicy {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Spnp
    }

    fn peer_inputs(&self) -> PeerInputs {
        PeerInputs::HigherPriorityServices
    }

    fn blocking(&self, sys: &TaskSystem, r: SubjobRef) -> Time {
        sys.blocking_time(r)
    }

    fn service_bounds(&self, inputs: &BoundsInputs<'_>) -> Result<ServiceBounds, AnalysisError> {
        spnp_bounds(
            inputs.workload,
            inputs.hp_lower,
            inputs.hp_upper,
            inputs.blocking,
            inputs.variant,
        )
        .map_err(AnalysisError::from)
    }

    fn service_bounds_into(
        &self,
        inputs: &BoundsInputs<'_>,
        scratch: &mut Scratch,
        out: &mut ServiceBounds,
    ) -> Result<(), AnalysisError> {
        spnp_bounds_into(
            inputs.workload,
            inputs.hp_lower,
            inputs.hp_upper,
            inputs.blocking,
            inputs.variant,
            scratch,
            out,
        )
        .map_err(AnalysisError::from)
    }

    fn service_bounds_soa_into(
        &self,
        inputs: &SoaBoundsInputs<'_>,
        scratch: &mut Scratch,
        out: &mut SoaServiceBounds,
    ) -> Result<(), AnalysisError> {
        spnp_bounds_soa_into(
            inputs.workload,
            inputs.hp_lower,
            inputs.hp_upper,
            inputs.blocking,
            inputs.variant,
            scratch,
            out,
        )
        .map_err(AnalysisError::from)
    }

    fn sim_scheduler(&self, _sys: &TaskSystem, _p: ProcessorId) -> Box<dyn SimScheduler> {
        Box::new(PrioritySim { preemptive: false })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_model::{ArrivalPattern, SystemBuilder};

    #[test]
    fn blocking_term_is_the_eq_15_maximum() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spnp);
        let t1 = b.add_job(
            "T1",
            Time(20),
            ArrivalPattern::Periodic {
                period: Time(20),
                offset: Time::ZERO,
            },
            vec![(p, Time(2))],
        );
        let t2 = b.add_job(
            "T2",
            Time(40),
            ArrivalPattern::Periodic {
                period: Time(40),
                offset: Time::ZERO,
            },
            vec![(p, Time(9))],
        );
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let hi = SubjobRef { job: t1, index: 0 };
        let lo = SubjobRef { job: t2, index: 0 };
        assert_eq!(SpnpPolicy.blocking(&sys, hi), Time(9));
        assert_eq!(SpnpPolicy.blocking(&sys, lo), Time::ZERO);
    }
}

//! The policy-kernel layer: one trait per scheduling discipline.
//!
//! The paper derives per-policy service functions (Theorem 3 for SPP,
//! Eq. 15/Theorems 5–6 for SPNP, Theorems 7–9 for FCFS) that all feed the
//! *same* Theorem-1/Theorem-4 response-time machinery. This module is the
//! seam between the curve algebra ([`rta_curves`]) and the drivers
//! ([`crate::bounds`], [`crate::fixpoint`], [`crate::exact`],
//! [`crate::session`], `rta-sim`): a [`ServicePolicy`] answers, for one
//! subjob, "given peer workload curves, priority context, and a horizon,
//! what service is guaranteed/possible, and what blocks it?".
//!
//! ## Contract (DESIGN.md §4c)
//!
//! Every implementation must produce service curves that are
//!
//! * **monotone** — nondecreasing (served work never un-happens);
//! * **causal** — `S(t) ≤ min(t, c̄(t))`: a subjob cannot be served faster
//!   than real time or beyond its demand;
//! * **zero at the origin** — `S(0) = 0` on the left-limit lattice;
//! * **ordered** — `S̲(t) ≤ S̄(t)` for all `t`.
//!
//! The property suite in `crates/core/tests/policy_conformance.rs` checks
//! these obligations for every registered policy on randomized workloads.
//!
//! ## Adding a policy
//!
//! 1. Add a [`SchedulerKind`] variant in `rta-model` (plus any per-subjob
//!    parameters, e.g. weights).
//! 2. Write a submodule here implementing [`ServicePolicy`] (and a
//!    [`SimScheduler`] for the event engine). Per-processor state derived
//!    from peer workloads lives in a [`PolicyContext`] built by
//!    [`ServicePolicy::build_context`].
//! 3. Register it in [`policy_for`] and [`all_policies`].
//!
//! No driver edits are required: the drivers consult
//! [`ServicePolicy::peer_inputs`] for dependency wiring and call
//! [`ServicePolicy::service_bounds`] for the math. The IWRR policy
//! ([`iwrr`]) was landed exactly this way.

use std::any::Any;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::config::SpnpAvailability;
use crate::error::AnalysisError;
use crate::spnp::{ServiceBounds, SoaServiceBounds};
use rta_curves::{Curve, Scratch, SoaCurve, Time};
use rta_model::{ProcessorId, SchedulerKind, SubjobRef, TaskSystem};

pub mod fcfs;
pub mod iwrr;
pub mod spnp;
pub mod spp;

/// Which peer curves a policy's bounds consume each evaluation — the
/// information drivers need to wire dependencies (and staleness tracking)
/// without knowing the discipline.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PeerInputs {
    /// Service bounds of strictly higher-priority subjobs on the same
    /// processor (the summations of Theorems 3, 5 and 6).
    HigherPriorityServices,
    /// Workload curves of *every* subjob sharing the processor, consumed
    /// once through [`ServicePolicy::build_context`] (Theorem 7's total
    /// workload `G`; IWRR's round length).
    SharedWorkloads,
}

/// Opaque per-processor state a policy derives from peer workload curves —
/// e.g. the FCFS utilization cache. Policies downcast their own context;
/// drivers only store and pass it, so adding a policy never touches them.
pub struct PolicyContext(Box<dyn Any + Send + Sync>);

impl PolicyContext {
    /// Wrap a policy-owned context value.
    pub fn new<T: Any + Send + Sync>(value: T) -> PolicyContext {
        PolicyContext(Box::new(value))
    }

    /// Downcast to the concrete context type; `None` when the context
    /// belongs to a different policy.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.0.downcast_ref::<T>()
    }
}

impl std::fmt::Debug for PolicyContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PolicyContext(..)")
    }
}

/// All inputs of one [`ServicePolicy::service_bounds`] evaluation.
///
/// Drivers fill every field they can; fields a policy does not consume
/// (e.g. `hp_lower` for FCFS, `ctx` for SPP) are simply ignored.
pub struct BoundsInputs<'a> {
    /// The subjob's (upper-bounded) workload `c̄ = f̄_arr · τ`.
    pub workload: &'a Curve,
    /// The subjob's execution time `τ`.
    pub tau: Time,
    /// The subjob's round-robin weight (1 unless assigned).
    pub weight: u32,
    /// The blocking term `b_{k,j}` from [`ServicePolicy::blocking`].
    pub blocking: Time,
    /// Lower service bounds of strictly higher-priority peers.
    pub hp_lower: &'a [&'a Curve],
    /// Upper service bounds of the same peers, in the same order.
    pub hp_upper: &'a [&'a Curve],
    /// Which Theorem-5 availability recursion SPNP uses.
    pub variant: SpnpAvailability,
    /// The processor context from [`ServicePolicy::build_context`], if any.
    pub ctx: Option<&'a PolicyContext>,
    /// Analysis horizon — curves are exact on `[0, horizon]`.
    pub horizon: Time,
    /// The processor this subjob executes on (for error reporting).
    pub processor: ProcessorId,
}

/// The inputs of one [`ServicePolicy::service_bounds_soa_into`]
/// evaluation — [`BoundsInputs`] with the curves in structure-of-arrays
/// layout (DESIGN.md §4g).
///
/// `workload_aos` carries the same curve as `workload` in AoS form: the
/// fixpoint drivers keep both (the AoS copy is built once at model
/// ingest), so policies falling back on the AoS kernels — the default
/// implementation, FCFS's context path — never pay a per-round
/// conversion of the workload.
pub struct SoaBoundsInputs<'a> {
    /// The subjob's (upper-bounded) workload `c̄ = f̄_arr · τ`.
    pub workload: &'a SoaCurve,
    /// The same workload in AoS layout (ingest-time conversion).
    pub workload_aos: &'a Curve,
    /// The subjob's execution time `τ`.
    pub tau: Time,
    /// The subjob's round-robin weight (1 unless assigned).
    pub weight: u32,
    /// The blocking term `b_{k,j}` from [`ServicePolicy::blocking`].
    pub blocking: Time,
    /// Lower service bounds of strictly higher-priority peers.
    pub hp_lower: &'a [&'a SoaCurve],
    /// Upper service bounds of the same peers, in the same order.
    pub hp_upper: &'a [&'a SoaCurve],
    /// Which Theorem-5 availability recursion SPNP uses.
    pub variant: SpnpAvailability,
    /// The processor context from [`ServicePolicy::build_context`], if any.
    pub ctx: Option<&'a PolicyContext>,
    /// Analysis horizon — curves are exact on `[0, horizon]`.
    pub horizon: Time,
    /// The processor this subjob executes on (for error reporting).
    pub processor: ProcessorId,
}

/// One scheduling discipline's analysis kernel plus its simulator.
///
/// Implementations are stateless singletons (per-processor state lives in
/// [`PolicyContext`]); the registry hands out `&'static` references.
pub trait ServicePolicy: Send + Sync {
    /// The model-level tag this policy implements.
    fn kind(&self) -> SchedulerKind;

    /// Which peer curves [`ServicePolicy::service_bounds`] consumes.
    fn peer_inputs(&self) -> PeerInputs;

    /// Whether the discipline preempts a running subjob for a
    /// higher-urgency arrival.
    fn preemptive(&self) -> bool {
        false
    }

    /// The blocking term `b_{k,j}` of Eq. 15 — zero unless the discipline
    /// lets lower-priority work hold the processor.
    fn blocking(&self, _sys: &TaskSystem, _r: SubjobRef) -> Time {
        Time::ZERO
    }

    /// Whether [`ServicePolicy::exact_service`] is available (Theorem 3
    /// holds only for preemptive static priorities).
    fn supports_exact(&self) -> bool {
        false
    }

    /// The *exact* service curve given exact peer services, or `None` when
    /// the discipline has no exact theory (drivers report
    /// [`AnalysisError::NotAllSpp`]).
    fn exact_service(&self, _workload: &Curve, _hp_services: &[&Curve]) -> Option<Curve> {
        None
    }

    /// Build the per-processor context from the workload curves of all
    /// subjobs sharing the processor (`peers` and `peer_workloads` are
    /// parallel slices). `Ok(None)` when the policy keeps no state.
    fn build_context(
        &self,
        _sys: &TaskSystem,
        _p: ProcessorId,
        _peers: &[SubjobRef],
        _peer_workloads: &[&Curve],
        _horizon: Time,
    ) -> Result<Option<PolicyContext>, AnalysisError> {
        Ok(None)
    }

    /// Lower/upper service bounds for one subjob — the policy kernel.
    fn service_bounds(&self, inputs: &BoundsInputs<'_>) -> Result<ServiceBounds, AnalysisError>;

    /// [`ServicePolicy::service_bounds`] writing into a caller-provided
    /// [`ServiceBounds`], drawing temporaries from `scratch` — the
    /// zero-allocation entry the fixpoint driver's warm path uses.
    ///
    /// The default delegates to the allocating kernel (correct for every
    /// policy); disciplines with hot `_into` kernels override it. Results
    /// must be bit-identical to [`ServicePolicy::service_bounds`].
    fn service_bounds_into(
        &self,
        inputs: &BoundsInputs<'_>,
        _scratch: &mut Scratch,
        out: &mut ServiceBounds,
    ) -> Result<(), AnalysisError> {
        *out = self.service_bounds(inputs)?;
        Ok(())
    }

    /// [`ServicePolicy::service_bounds_into`] with every curve in
    /// structure-of-arrays layout — the entry the SoA fixpoint rounds call
    /// (DESIGN.md §4g). Results must convert bit-identically to
    /// [`ServicePolicy::service_bounds`].
    ///
    /// The default converts at the boundary and delegates to the AoS
    /// kernel — correct for every policy, and cheap for disciplines whose
    /// bounds take no cross-round inputs (FCFS, IWRR: computed once per
    /// analysis, never re-evaluated on warm rounds). Disciplines with
    /// native SoA chains (SPP/SPNP) override it.
    fn service_bounds_soa_into(
        &self,
        inputs: &SoaBoundsInputs<'_>,
        scratch: &mut Scratch,
        out: &mut SoaServiceBounds,
    ) -> Result<(), AnalysisError> {
        let hp_lower: Vec<Curve> = inputs.hp_lower.iter().map(|c| c.to_curve()).collect();
        let hp_upper: Vec<Curve> = inputs.hp_upper.iter().map(|c| c.to_curve()).collect();
        let hp_lo_refs: Vec<&Curve> = hp_lower.iter().collect();
        let hp_up_refs: Vec<&Curve> = hp_upper.iter().collect();
        let aos_inputs = BoundsInputs {
            workload: inputs.workload_aos,
            tau: inputs.tau,
            weight: inputs.weight,
            blocking: inputs.blocking,
            hp_lower: &hp_lo_refs,
            hp_upper: &hp_up_refs,
            variant: inputs.variant,
            ctx: inputs.ctx,
            horizon: inputs.horizon,
            processor: inputs.processor,
        };
        let mut tmp = ServiceBounds {
            lower: scratch.take_curve(),
            upper: scratch.take_curve(),
        };
        let r = self.service_bounds_into(&aos_inputs, scratch, &mut tmp);
        if r.is_ok() {
            out.copy_from_bounds(&tmp);
        }
        scratch.put_curve(tmp.lower);
        scratch.put_curve(tmp.upper);
        r
    }

    /// A fresh event-engine scheduler for one processor running this
    /// discipline.
    fn sim_scheduler(&self, sys: &TaskSystem, p: ProcessorId) -> Box<dyn SimScheduler>;
}

/// The single dispatch point from model tags to policy kernels.
pub fn policy_for(kind: SchedulerKind) -> &'static dyn ServicePolicy {
    match kind {
        SchedulerKind::Spp => &spp::SppPolicy,
        SchedulerKind::Spnp => &spnp::SpnpPolicy,
        SchedulerKind::Fcfs => &fcfs::FcfsPolicy,
        SchedulerKind::Iwrr => &iwrr::IwrrPolicy,
    }
}

/// Every registered policy — the conformance suite iterates this.
pub fn all_policies() -> Vec<&'static dyn ServicePolicy> {
    vec![
        &spp::SppPolicy,
        &spnp::SpnpPolicy,
        &fcfs::FcfsPolicy,
        &iwrr::IwrrPolicy,
    ]
}

/// Per-processor policy contexts, built lazily — the single home of the
/// slot bookkeeping previously duplicated across the bounds and fixpoint
/// drivers.
#[derive(Default)]
pub struct ProcessorContexts {
    slots: HashMap<usize, Option<PolicyContext>>,
}

impl ProcessorContexts {
    /// An empty cache.
    pub fn new() -> ProcessorContexts {
        ProcessorContexts::default()
    }

    /// Build (once) and return processor `p`'s context, deriving the peer
    /// workload curves on demand via `workload_of`. Policies without
    /// per-processor state yield `None` without calling `workload_of`.
    pub fn ensure(
        &mut self,
        sys: &TaskSystem,
        p: ProcessorId,
        horizon: Time,
        workload_of: &mut dyn FnMut(SubjobRef) -> Curve,
    ) -> Result<Option<&PolicyContext>, AnalysisError> {
        if let Entry::Vacant(e) = self.slots.entry(p.0) {
            let policy = policy_for(sys.processor(p).scheduler);
            let ctx = if policy.peer_inputs() == PeerInputs::SharedWorkloads {
                let peers = sys.subjobs_on(p);
                let workloads: Vec<Curve> = peers.iter().map(|&o| workload_of(o)).collect();
                let refs: Vec<&Curve> = workloads.iter().collect();
                policy.build_context(sys, p, &peers, &refs, horizon)?
            } else {
                None
            };
            e.insert(ctx);
        }
        Ok(self.get(p))
    }

    /// The context of processor `p`, if one has been built.
    pub fn get(&self, p: ProcessorId) -> Option<&PolicyContext> {
        self.slots.get(&p.0).and_then(|c| c.as_ref())
    }
}

/// A ready instance as the event engine presents it to a scheduler: the
/// subjob it instantiates, when it became ready at this hop, and a unique
/// release sequence number for deterministic tie-breaks.
#[derive(Copy, Clone, Debug)]
pub struct ReadyInstance {
    /// The subjob this instance executes.
    pub subjob: SubjobRef,
    /// When the instance was released at this hop.
    pub hop_release: Time,
    /// Global release sequence number (unique).
    pub seq: u64,
    /// The subjob's static priority rank, cached by the engine when the
    /// view is built (`u32::MAX` when the processor's policy assigns no
    /// priorities), so priority policies never chase `sys` pointers inside
    /// their selection loops.
    pub prio: u32,
}

/// One processor's ready queue as the event engine presents it for a
/// scheduling decision: a borrowed view over the engine's per-processor
/// scratch buffer, rebuilt in place before each decision. Wrapping the
/// slice (rather than passing it raw) keeps the trait contract explicit —
/// the views are valid only for the duration of one `pick_idx`/`preempts`
/// call, and no policy may retain or allocate copies of them.
#[derive(Copy, Clone, Debug)]
pub struct ReadySet<'a> {
    items: &'a [ReadyInstance],
}

impl<'a> ReadySet<'a> {
    /// Wrap the engine's scratch buffer for one decision.
    pub fn new(items: &'a [ReadyInstance]) -> ReadySet<'a> {
        ReadySet { items }
    }

    /// Number of ready instances.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the ready queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate the ready instances in queue order.
    pub fn iter(&self) -> std::slice::Iter<'a, ReadyInstance> {
        self.items.iter()
    }

    /// The underlying slice, in queue order.
    pub fn as_slice(&self) -> &'a [ReadyInstance] {
        self.items
    }
}

impl std::ops::Index<usize> for ReadySet<'_> {
    type Output = ReadyInstance;
    fn index(&self, i: usize) -> &ReadyInstance {
        &self.items[i]
    }
}

/// A scheduler's static decision shape, when it has one.
///
/// Disciplines whose dispatch is a pure argmin over the fields of
/// [`ReadyInstance`] — no internal state, no `sys` consultation — can
/// advertise that shape here, and the event engine runs the scan inline
/// instead of making two virtual calls per scheduling decision. The
/// declared shape **must** be observably identical to the scheduler's
/// `pick_idx`/`preempts` (the simulator's oracle suite pins this); when in
/// doubt, stay [`FastPath::Dynamic`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FastPath {
    /// Dispatch the minimum of `(prio, hop_release, seq)`; when
    /// `preemptive`, an arrival preempts iff its `prio` is strictly below
    /// the running instance's (SPP/SPNP).
    PrioMin {
        /// Whether a strictly higher-priority arrival preempts.
        preemptive: bool,
    },
    /// Dispatch the minimum of `(hop_release, job, seq)`; never preempts
    /// (FCFS).
    FifoMin,
    /// No static shape — the engine calls `pick_idx`/`preempts` (IWRR's
    /// round cursor).
    Dynamic,
}

/// The dispatch side of a policy: which ready instance runs next, and
/// whether an arrival preempts the running one. Stateful schedulers (IWRR's
/// round cursor) advance on each successful `pick_idx`. Both hooks operate
/// on a borrowed [`ReadySet`] so a decision never allocates.
pub trait SimScheduler: Send {
    /// Index into `ready` of the instance to dispatch, `None` when empty.
    fn pick_idx(&mut self, sys: &TaskSystem, ready: &ReadySet<'_>) -> Option<usize>;

    /// Whether any instance in `ready` preempts `running` — an
    /// exists-test over the set, with no ordering or completeness
    /// assumptions. Callers may pass any subset of the true ready set that
    /// is guaranteed to contain every instance that could preempt (the
    /// engine passes just the newly released instance when it is the only
    /// state change since the last decision).
    fn preempts(&self, _sys: &TaskSystem, _running: &ReadyInstance, _ready: &ReadySet<'_>) -> bool {
        false
    }

    /// Restore the scheduler to its start-of-run state for a new run on
    /// (possibly) a different system, returning `true` on success. A
    /// `false` return means the scheduler holds system-derived state it
    /// cannot cheaply re-derive; the caller must construct a fresh one.
    /// Stateless dispatchers return `true` and Monte-Carlo drivers then
    /// recycle the allocation across draws.
    fn reset(&mut self, _sys: &TaskSystem, _p: ProcessorId) -> bool {
        false
    }

    /// The scheduler's static decision shape (see [`FastPath`]). Must
    /// match `pick_idx`/`preempts` exactly; defaults to dynamic dispatch.
    fn fast_path(&self) -> FastPath {
        FastPath::Dynamic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trips_every_kind() {
        for kind in [
            SchedulerKind::Spp,
            SchedulerKind::Spnp,
            SchedulerKind::Fcfs,
            SchedulerKind::Iwrr,
        ] {
            assert_eq!(policy_for(kind).kind(), kind);
        }
        assert_eq!(all_policies().len(), 4);
    }

    #[test]
    fn policy_context_downcasts_its_own_type_only() {
        let ctx = PolicyContext::new(42_u64);
        assert_eq!(ctx.downcast_ref::<u64>(), Some(&42));
        assert!(ctx.downcast_ref::<i32>().is_none());
    }

    #[test]
    fn exact_support_matches_the_paper() {
        // Theorem 3 is preemptive-static-priority only.
        for p in all_policies() {
            assert_eq!(
                p.supports_exact(),
                p.kind() == SchedulerKind::Spp,
                "{}",
                p.kind()
            );
            if p.supports_exact() {
                assert!(p.preemptive());
            }
        }
    }
}

//! Persistent worker pool for the analysis drivers.
//!
//! The per-round work of the fixpoint analyses is embarrassingly parallel:
//! every subjob's service bounds for round `r` depend only on round `r − 1`
//! values. Earlier revisions fanned each round out over fresh
//! [`std::thread::scope`] threads, paying tens of microseconds of thread
//! start-up per round — a real tax once an [`crate::AnalysisSession`]
//! re-analyzes thousands of slightly-perturbed systems. This module replaces
//! that with a process-wide pool of long-lived workers, built from `std`
//! primitives only (no external crates, no `unsafe`):
//!
//! * Workers park on a [`Condvar`] over a shared [`VecDeque`] of boxed jobs
//!   and live for the life of the process.
//! * [`pool_map`] splits an indexed computation into chunks claimed from a
//!   shared atomic cursor. The **calling thread participates**: it claims
//!   chunks like any worker and only blocks on results for chunks some
//!   worker is actively computing. This makes nested `pool_map` calls
//!   deadlock-free — a worker that re-enters `pool_map` simply computes the
//!   inner map itself if no peer is free — and keeps the fast path (small
//!   `n`, single-core machine) allocation-light and sequential.
//! * A panic inside a worker-executed closure is converted into a panic on
//!   the calling thread via a drop-guard message rather than a silent hang;
//!   the worker itself survives and returns to the queue.
//!
//! Results are returned in index order and are deterministic: which thread
//! computes `f(i)` never affects the output.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

/// A process-wide set of long-lived worker threads fed from one queue.
struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: usize,
}

impl WorkerPool {
    fn with_workers(workers: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        for k in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("rta-pool-{k}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn pool worker");
        }
        WorkerPool { shared, workers }
    }

    fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let cores = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1);
            // The caller participates in every map, so `cores - 1` workers
            // saturate the machine without oversubscribing it.
            WorkerPool::with_workers(cores.saturating_sub(1))
        })
    }

    fn submit(&self, job: Job) {
        let mut queue = self.shared.queue.lock().expect("pool queue lock");
        queue.push_back(job);
        drop(queue);
        self.shared.available.notify_one();
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.available.wait(queue).expect("pool queue wait");
            }
        };
        // Keep the worker alive across panicking jobs; the job's drop-guard
        // reports the failure to the thread that submitted it.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

/// Number of threads a [`pool_map`] call can use, caller included.
pub fn pool_threads() -> usize {
    WorkerPool::global().workers + 1
}

enum Msg<T> {
    Item(usize, T),
    /// Sent from a ticket's drop-guard when its closure panicked.
    Failed,
}

/// Reports ticket failure on unwind so the caller panics instead of hanging.
struct TicketGuard<T> {
    tx: Sender<Msg<T>>,
    armed: bool,
}

impl<T> Drop for TicketGuard<T> {
    fn drop(&mut self) {
        if self.armed {
            let _ = self.tx.send(Msg::Failed);
        }
    }
}

/// Evaluate `f(0), f(1), …, f(n-1)` on the persistent pool and return the
/// results in index order.
///
/// The calling thread claims and computes chunks alongside the pool workers,
/// so the call makes progress even when every worker is busy — including
/// when it is itself running on a pool worker (nested maps). Panics raised
/// by `f` on a worker are re-raised on the calling thread.
pub fn pool_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    let pool = WorkerPool::global();
    // Spawn-free fast path: tiny batches are cheaper inline.
    if pool.workers == 0 || n < 4 {
        return (0..n).map(f).collect();
    }

    let f = Arc::new(f);
    let next = Arc::new(AtomicUsize::new(0));
    let participants = (pool.workers + 1).min(n);
    // Several chunks per participant so an unlucky expensive chunk cannot
    // serialize the whole map behind one thread.
    let chunk = n.div_ceil(participants * 4).max(1);
    let tickets = participants.min(n.div_ceil(chunk)).saturating_sub(1);

    let (tx, rx) = channel::<Msg<T>>();
    for _ in 0..tickets {
        let f = Arc::clone(&f);
        let next = Arc::clone(&next);
        let tx = tx.clone();
        pool.submit(Box::new(move || {
            let mut guard = TicketGuard { tx, armed: true };
            loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                for i in start..(start + chunk).min(n) {
                    // A send error means the caller already panicked and
                    // dropped the receiver; abandon the remaining work.
                    if guard.tx.send(Msg::Item(i, f(i))).is_err() {
                        break;
                    }
                }
            }
            guard.armed = false;
        }));
    }
    drop(tx);

    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let mut filled = 0usize;
    // Caller participation: claim chunks until the cursor is exhausted.
    loop {
        let start = next.fetch_add(chunk, Ordering::Relaxed);
        if start >= n {
            break;
        }
        let end = (start + chunk).min(n);
        for (off, slot) in out[start..end].iter_mut().enumerate() {
            *slot = Some(f(start + off));
            filled += 1;
        }
    }
    // Collect the chunks claimed by workers. Every claimed index is either
    // delivered or covered by a `Failed` marker from the ticket guard, so
    // this loop terminates.
    while filled < n {
        match rx.recv() {
            Ok(Msg::Item(i, v)) => {
                out[i] = Some(v);
                filled += 1;
            }
            Ok(Msg::Failed) => panic!("pool_map: a worker task panicked"),
            Err(_) => panic!("pool_map: workers disconnected with {filled}/{n} results"),
        }
    }
    out.into_iter()
        .map(|x| x.expect("every index computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        for n in [0, 1, 3, 4, 7, 64, 1000] {
            let v = pool_map(n, |i| i * i);
            assert_eq!(v, (0..n).map(|i| i * i).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn closures_can_capture_shared_state() {
        let data: Arc<Vec<i64>> = Arc::new((0..100).collect());
        let v = pool_map(data.len(), move |i| data[i] + 1);
        assert_eq!(v[99], 100);
    }

    #[test]
    fn nested_maps_do_not_deadlock() {
        // Every outer chunk re-enters pool_map while its siblings occupy the
        // workers; caller participation must keep all of them progressing.
        let v = pool_map(16, |i| pool_map(64, move |j| i * j).iter().sum::<usize>());
        for (i, total) in v.into_iter().enumerate() {
            assert_eq!(total, i * (63 * 64) / 2, "outer index {i}");
        }
    }

    #[test]
    fn repeated_maps_reuse_the_pool() {
        // Exercises ticket cleanup across many small maps: stale tickets
        // from earlier maps must drain as no-ops without corrupting later
        // results.
        for round in 0..50 {
            let v = pool_map(32, move |i| i + round);
            assert_eq!(v[31], 31 + round, "round {round}");
        }
    }

    #[test]
    fn pool_reports_at_least_the_caller() {
        assert!(pool_threads() >= 1);
    }
}

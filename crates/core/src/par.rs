//! Scoped-thread fan-out for the analysis drivers.
//!
//! The per-round work of the fixpoint analyses is embarrassingly parallel:
//! every subjob's service bounds for round `r` depend only on round `r − 1`
//! values. [`par_map`] fans an indexed computation out over
//! [`std::thread::scope`] workers in contiguous chunks and returns the
//! results in index order. Falls back to a plain sequential map when the
//! problem or the machine is too small for threads to pay off.

/// Evaluate `f(0), f(1), …, f(n-1)` (possibly in parallel) and return the
/// results in index order. `f` must be safe to call concurrently from
/// multiple threads.
pub(crate) fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    // Spawning costs ~tens of µs per thread; a tiny batch is cheaper inline.
    if threads <= 1 || n < 4 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (slots, base) in out.chunks_mut(chunk).zip((0..n).step_by(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (k, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(base + k));
                }
            });
        }
    });
    out.into_iter()
        .map(|x| x.expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        for n in [0, 1, 3, 4, 7, 64, 1000] {
            let v = par_map(n, |i| i * i);
            assert_eq!(v, (0..n).map(|i| i * i).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn closures_can_borrow_shared_state() {
        let data: Vec<i64> = (0..100).collect();
        let v = par_map(data.len(), |i| data[i] + 1);
        assert_eq!(v[99], 100);
    }
}

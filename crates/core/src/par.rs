//! Persistent worker pool for the analysis drivers.
//!
//! The per-round work of the fixpoint analyses is embarrassingly parallel:
//! every subjob's service bounds for round `r` depend only on round `r − 1`
//! values. Earlier revisions fanned each round out over fresh
//! [`std::thread::scope`] threads, paying tens of microseconds of thread
//! start-up per round — a real tax once an [`crate::AnalysisSession`]
//! re-analyzes thousands of slightly-perturbed systems. This module replaces
//! that with a process-wide pool of long-lived workers, built from `std`
//! primitives only (no external crates, no `unsafe`):
//!
//! * Workers park on a [`Condvar`] over a shared [`VecDeque`] of boxed jobs
//!   and live for the life of the process.
//! * [`pool_map`] splits an indexed computation into chunks claimed from a
//!   shared atomic cursor. The **calling thread participates**: it claims
//!   chunks like any worker and only blocks on results for chunks some
//!   worker is actively computing. This makes nested `pool_map` calls
//!   deadlock-free — a worker that re-enters `pool_map` simply computes the
//!   inner map itself if no peer is free — and keeps the fast path (small
//!   `n`, single-core machine) allocation-light and sequential.
//! * A panic inside a worker-executed closure is converted into a panic on
//!   the calling thread via a drop-guard message rather than a silent hang;
//!   the worker itself survives and returns to the queue.
//! * Results travel back **one message per chunk**, not per item, so channel
//!   overhead stays constant-per-participant even for thousand-element maps.
//! * [`pool_map_stateful`] additionally gives every participating thread a
//!   private, `init`-built state value threaded through its `f` calls — the
//!   substrate for batched Monte-Carlo sweeps that reuse warm analysis
//!   sessions per thread.
//!
//! Results are returned in index order and are deterministic: which thread
//! computes `f(i)` never affects the output.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

/// A process-wide set of long-lived worker threads fed from one queue.
struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: usize,
}

impl WorkerPool {
    fn with_workers(workers: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        for k in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("rta-pool-{k}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn pool worker");
        }
        WorkerPool { shared, workers }
    }

    fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let cores = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1);
            // The caller participates in every map, so `cores - 1` workers
            // saturate the machine without oversubscribing it.
            WorkerPool::with_workers(cores.saturating_sub(1))
        })
    }

    fn submit(&self, job: Job) {
        let mut queue = self.shared.queue.lock().expect("pool queue lock");
        queue.push_back(job);
        drop(queue);
        self.shared.available.notify_one();
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.available.wait(queue).expect("pool queue wait");
            }
        };
        // Keep the worker alive across panicking jobs; the job's drop-guard
        // reports the failure to the thread that submitted it.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

/// Number of threads a [`pool_map`] call can use, caller included.
pub fn pool_threads() -> usize {
    WorkerPool::global().workers + 1
}

enum Msg<T> {
    /// One computed chunk: the start index and the values for
    /// `start..start + vals.len()`. Chunk-granular messages keep channel
    /// traffic at a handful of sends per participant instead of one per
    /// item — the difference is measurable when `n` is in the thousands
    /// and `f` is cheap (Monte-Carlo admission sweeps).
    Chunk(usize, Vec<T>),
    /// Sent from a ticket's drop-guard when its closure panicked.
    Failed,
}

/// Reports ticket failure on unwind so the caller panics instead of hanging.
struct TicketGuard<T> {
    tx: Sender<Msg<T>>,
    armed: bool,
}

impl<T> Drop for TicketGuard<T> {
    fn drop(&mut self) {
        if self.armed {
            let _ = self.tx.send(Msg::Failed);
        }
    }
}

/// Evaluate `f(0), f(1), …, f(n-1)` on the persistent pool and return the
/// results in index order.
///
/// The calling thread claims and computes chunks alongside the pool workers,
/// so the call makes progress even when every worker is busy — including
/// when it is itself running on a pool worker (nested maps). Panics raised
/// by `f` on a worker are re-raised on the calling thread.
pub fn pool_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    pool_map_stateful(n, || (), move |(), i| f(i))
}

/// Like [`pool_map`], but each participating thread carries a private state
/// value `S` built once by `init` and threaded through every `f` call that
/// thread makes.
///
/// This is the hook that lets Monte-Carlo sweeps reuse expensive per-thread
/// resources (analysis sessions, curve arenas) across the scenarios a thread
/// happens to process: a thread calls `init()` exactly once, then evaluates
/// each claimed index with `&mut` access to its state. `S` never crosses a
/// thread boundary, so it needs neither `Send` nor `Sync` — a
/// [`rta_curves::Scratch`] works fine.
///
/// Which indices land on which thread (and hence on which state value) is
/// **not** deterministic; results are deterministic only when `f(state, i)`
/// depends on mutations of `state` in a value-independent way (caches,
/// arenas, warm buffers — not accumulators).
pub fn pool_map_stateful<S, T, I, F>(n: usize, init: I, f: F) -> Vec<T>
where
    T: Send + 'static,
    I: Fn() -> S + Send + Sync + 'static,
    F: Fn(&mut S, usize) -> T + Send + Sync + 'static,
{
    let pool = WorkerPool::global();
    // Spawn-free fast path: tiny batches are cheaper inline — dispatch
    // overhead (ticket submit, channel, wake-ups) costs more than a handful
    // of evaluations.
    if pool.workers == 0 || n < 8 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }

    let shared = Arc::new((init, f));
    let next = Arc::new(AtomicUsize::new(0));
    let participants = (pool.workers + 1).min(n);
    // Several chunks per participant so an unlucky expensive chunk cannot
    // serialize the whole map behind one thread.
    let chunk = n.div_ceil(participants * 4).max(1);
    let tickets = participants.min(n.div_ceil(chunk)).saturating_sub(1);

    let (tx, rx) = channel::<Msg<T>>();
    for _ in 0..tickets {
        let shared = Arc::clone(&shared);
        let next = Arc::clone(&next);
        let tx = tx.clone();
        pool.submit(Box::new(move || {
            let mut guard = TicketGuard { tx, armed: true };
            let (init, f) = &*shared;
            let mut state = init();
            loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                let mut vals = Vec::with_capacity(end - start);
                for i in start..end {
                    vals.push(f(&mut state, i));
                }
                // A send error means the caller already panicked and dropped
                // the receiver; abandon the remaining work.
                if guard.tx.send(Msg::Chunk(start, vals)).is_err() {
                    break;
                }
            }
            guard.armed = false;
        }));
    }
    drop(tx);

    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let mut filled = 0usize;
    let (init, f) = &*shared;
    let mut state = init();
    // Caller participation: claim chunks until the cursor is exhausted.
    loop {
        let start = next.fetch_add(chunk, Ordering::Relaxed);
        if start >= n {
            break;
        }
        let end = (start + chunk).min(n);
        for (off, slot) in out[start..end].iter_mut().enumerate() {
            *slot = Some(f(&mut state, start + off));
            filled += 1;
        }
    }
    // Collect the chunks claimed by workers. Every claimed chunk is either
    // delivered or covered by a `Failed` marker from the ticket guard, so
    // this loop terminates.
    while filled < n {
        match rx.recv() {
            Ok(Msg::Chunk(start, vals)) => {
                for (slot, v) in out[start..].iter_mut().zip(vals) {
                    *slot = Some(v);
                    filled += 1;
                }
            }
            Ok(Msg::Failed) => panic!("pool_map: a worker task panicked"),
            Err(_) => panic!("pool_map: workers disconnected with {filled}/{n} results"),
        }
    }
    out.into_iter()
        .map(|x| x.expect("every index computed"))
        .collect()
}

/// Evaluate `f(state, 0), …, f(state, n-1)` across the pool and return the
/// **per-thread states** after all indices are processed.
///
/// Where [`pool_map_stateful`] returns per-index results and discards the
/// states, this returns the states and discards per-index results — the
/// shape wanted by streaming accumulation (Monte-Carlo counters, sketches):
/// each participating thread folds the indices it claims into its own `S`,
/// and the caller merges the returned states. No per-draw values ever cross
/// a thread boundary.
///
/// The returned vector holds one state per thread that actually claimed at
/// least one chunk (at most [`pool_threads`], at least one for `n > 0`), in
/// **unspecified order** — which indices landed in which state is scheduling
/// -dependent, so the caller's merge must be commutative and associative for
/// the final fold to be partition-independent. `S` crosses back to the
/// caller once at the end and therefore must be `Send`.
pub fn pool_fold_states<S, I, F>(n: usize, init: I, f: F) -> Vec<S>
where
    S: Send + 'static,
    I: Fn() -> S + Send + Sync + 'static,
    F: Fn(&mut S, usize) + Send + Sync + 'static,
{
    let pool = WorkerPool::global();
    if pool.workers == 0 || n < 8 {
        let mut state = init();
        for i in 0..n {
            f(&mut state, i);
        }
        return vec![state];
    }

    let shared = Arc::new((init, f));
    let next = Arc::new(AtomicUsize::new(0));
    let participants = (pool.workers + 1).min(n);
    let chunk = n.div_ceil(participants * 4).max(1);
    let tickets = participants.min(n.div_ceil(chunk)).saturating_sub(1);

    // One message per ticket: its final state (None when the ticket never
    // claimed a chunk), or `Failed` from the drop-guard on panic.
    let (tx, rx) = channel::<Msg<Option<S>>>();
    for _ in 0..tickets {
        let shared = Arc::clone(&shared);
        let next = Arc::clone(&next);
        let tx = tx.clone();
        pool.submit(Box::new(move || {
            let mut guard = TicketGuard { tx, armed: true };
            let (init, f) = &*shared;
            // Built lazily on the first claimed chunk so losing tickets
            // (all chunks already taken) cost nothing.
            let mut state: Option<S> = None;
            loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let s = state.get_or_insert_with(init);
                let end = (start + chunk).min(n);
                for i in start..end {
                    f(s, i);
                }
            }
            let _ = guard.tx.send(Msg::Chunk(0, vec![state]));
            guard.armed = false;
        }));
    }
    drop(tx);

    let (init, f) = &*shared;
    let mut state = init();
    loop {
        let start = next.fetch_add(chunk, Ordering::Relaxed);
        if start >= n {
            break;
        }
        let end = (start + chunk).min(n);
        for i in start..end {
            f(&mut state, i);
        }
    }
    let mut states = vec![state];
    // Every ticket either delivers its (possibly None) state or a `Failed`
    // marker via the guard, so exactly `tickets` messages arrive.
    for _ in 0..tickets {
        match rx.recv() {
            Ok(Msg::Chunk(_, vals)) => states.extend(vals.into_iter().flatten()),
            Ok(Msg::Failed) => panic!("pool_fold_states: a worker task panicked"),
            Err(_) => panic!("pool_fold_states: workers disconnected early"),
        }
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        for n in [0, 1, 3, 4, 7, 64, 1000] {
            let v = pool_map(n, |i| i * i);
            assert_eq!(v, (0..n).map(|i| i * i).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn closures_can_capture_shared_state() {
        let data: Arc<Vec<i64>> = Arc::new((0..100).collect());
        let v = pool_map(data.len(), move |i| data[i] + 1);
        assert_eq!(v[99], 100);
    }

    #[test]
    fn nested_maps_do_not_deadlock() {
        // Every outer chunk re-enters pool_map while its siblings occupy the
        // workers; caller participation must keep all of them progressing.
        let v = pool_map(16, |i| pool_map(64, move |j| i * j).iter().sum::<usize>());
        for (i, total) in v.into_iter().enumerate() {
            assert_eq!(total, i * (63 * 64) / 2, "outer index {i}");
        }
    }

    #[test]
    fn repeated_maps_reuse_the_pool() {
        // Exercises ticket cleanup across many small maps: stale tickets
        // from earlier maps must drain as no-ops without corrupting later
        // results.
        for round in 0..50 {
            let v = pool_map(32, move |i| i + round);
            assert_eq!(v[31], 31 + round, "round {round}");
        }
    }

    #[test]
    fn pool_reports_at_least_the_caller() {
        assert!(pool_threads() >= 1);
    }

    #[test]
    fn stateful_map_builds_one_state_per_thread() {
        use std::sync::atomic::AtomicUsize;

        // Each participant gets its own warm buffer; results must still be
        // index-ordered and value-correct regardless of which thread (and
        // hence which buffer) computed each index.
        static INITS: AtomicUsize = AtomicUsize::new(0);
        let v = pool_map_stateful(
            1000,
            || {
                INITS.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |buf, i| {
                buf.clear();
                buf.extend(0..=i % 10);
                buf.iter().sum::<usize>() + i
            },
        );
        for (i, got) in v.into_iter().enumerate() {
            let m = i % 10;
            assert_eq!(got, m * (m + 1) / 2 + i, "index {i}");
        }
        // At most one state per participating thread (workers may not all
        // win a ticket, but none builds two states).
        assert!(INITS.load(Ordering::Relaxed) <= pool_threads());
    }

    #[test]
    fn fold_states_cover_every_index_exactly_once() {
        for n in [0, 1, 7, 8, 100, 1000] {
            let states = pool_fold_states(
                n,
                || (0u64, 0u64), // (count, index sum)
                |s, i| {
                    s.0 += 1;
                    s.1 += i as u64;
                },
            );
            assert!(!states.is_empty());
            assert!(states.len() <= pool_threads());
            let count: u64 = states.iter().map(|s| s.0).sum();
            let sum: u64 = states.iter().map(|s| s.1).sum();
            assert_eq!(count, n as u64, "n={n}");
            assert_eq!(sum, (0..n as u64).sum::<u64>(), "n={n}");
        }
    }

    #[test]
    fn fold_states_merge_matches_sequential_fold() {
        // Integer accumulators merged across threads must equal the
        // sequential fold bit-for-bit — the property the WCDFP engine
        // builds on.
        let mut seq = [0u64; 16];
        for i in 0..5000usize {
            seq[i % 16] += (i * i) as u64;
        }
        let states = pool_fold_states(5000, || [0u64; 16], |s, i| s[i % 16] += (i * i) as u64);
        let mut merged = [0u64; 16];
        for s in states {
            for (m, v) in merged.iter_mut().zip(s) {
                *m += v;
            }
        }
        assert_eq!(merged, seq);
    }

    #[test]
    fn stateful_map_runs_inline_when_small() {
        // Below the dispatch threshold the caller computes everything with a
        // single state, so stateful accumulation is sequential and exact.
        let v = pool_map_stateful(
            7,
            || 0usize,
            |acc, i| {
                *acc += i;
                *acc
            },
        );
        assert_eq!(v, vec![0, 1, 3, 6, 10, 15, 21]);
    }
}

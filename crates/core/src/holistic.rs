//! The "SPP/S&L" baseline: holistic analysis with jitter propagation for
//! periodic jobs under direct synchronization.
//!
//! Section 5 of the paper compares its exact method against "the method
//! proposed in [1, 2]" (Sun & Liu), which bounds end-to-end response times
//! of *periodic* jobs in distributed systems with the Direct Synchronization
//! protocol. The implementable core of that family is the holistic analysis
//! of Tindell & Clark with release jitter (the paper's reference \[6\], whose
//! weakness Sun & Liu corrected): each subjob is modeled as a periodic task
//! whose release jitter is the worst-case completion time of its
//! predecessor hop, and per-processor busy-window analysis with jitter is
//! iterated to a global fixed point.
//!
//! ```text
//! w_q  =  (q+1)·C_{k,j} + Σ_{hp (l,i)} ⌈(w_q + J_{l,i}) / ρ_l⌉ · C_{l,i}
//! R_{k,j}  =  max_q ( J_{k,j} + w_q − q·ρ_k ),    J_{k,j+1} = R_{k,j}
//! ```
//!
//! The iteration is monotone in the jitters, so it either converges or
//! provably diverges past the cap (job unschedulable at any bound). As the
//! paper's Figure 3 shows — and the benches reproduce — this baseline
//! matches the exact analysis on single-stage systems and is strictly
//! pessimistic on multi-stage ones, because jitter-based interference
//! accounting implicitly over-estimates downstream arrivals.

use std::cell::RefCell;

use crate::config::AnalysisConfig;
use crate::error::AnalysisError;
use crate::report::{BoundsReport, JobBound};
use rta_curves::Time;
use rta_model::{ArrivalPattern, JobId, SubjobRef, TaskSystem};

/// Converged jitter/response state of a holistic run, reusable to warm-start
/// the next run.
///
/// Seeding is *sound only from below*: the jitter iteration is monotone and
/// converges to its least fixed point from any state below that fixed point,
/// so a seed taken from a system with pointwise smaller-or-equal execution
/// times (e.g. the previous, smaller λ of a scaling sweep) reproduces the
/// cold-start result exactly in fewer rounds. Callers are responsible for
/// that precondition; [`crate::AnalysisSession`] enforces it.
#[derive(Clone, Debug)]
pub struct HolisticSeed {
    pub(crate) window: Time,
    pub(crate) horizon: Time,
    pub(crate) jitter: Vec<Time>,
    pub(crate) response: Vec<Time>,
    pub(crate) diverged: Vec<bool>,
}

impl HolisticSeed {
    /// `true` when this seed can start an analysis at frame
    /// `(window, horizon)` over `n` subjobs.
    pub fn matches(&self, window: Time, horizon: Time, n: usize) -> bool {
        self.window == window && self.horizon == horizon && self.jitter.len() == n
    }
}

/// Per-thread state of the holistic iteration, reused across calls. The
/// busy-window scans are scalar arithmetic — microseconds per round — so
/// the rounds run sequentially in the caller's thread: dispatching them
/// over the worker pool costs more than the scans themselves, and doing so
/// from inside a Monte-Carlo sweep (which already parallelizes over
/// scenarios) serialized the sweep on the pool's queue.
#[derive(Default)]
struct HolisticWorkspace {
    refs: Vec<SubjobRef>,
    /// `job_start[k] + j` is the dense index of subjob `j` of job `k`.
    job_start: Vec<usize>,
    periods: Vec<Time>,
    exec: Vec<Time>,
    period: Vec<Time>,
    preds: Vec<Option<usize>>,
    /// Flattened hp interference inputs `(exec, period, jitter slot)`;
    /// node `i`'s inputs are `hp_flat[hp_start[i]..hp_start[i + 1]]`.
    hp_flat: Vec<(Time, Time, usize)>,
    hp_start: Vec<usize>,
    // Double-buffered Jacobi iterates.
    jitter: Vec<Time>,
    response: Vec<Time>,
    diverged: Vec<bool>,
    jitter_next: Vec<Time>,
    response_next: Vec<Time>,
    diverged_next: Vec<bool>,
}

thread_local! {
    static HOL_WS: RefCell<HolisticWorkspace> = RefCell::new(HolisticWorkspace::default());
}

/// Run the holistic (SPP/S&L-style) analysis. Requires SPP scheduling on
/// every processor and periodic arrival patterns on every job.
pub fn analyze_holistic(
    sys: &TaskSystem,
    cfg: &AnalysisConfig,
) -> Result<BoundsReport, AnalysisError> {
    analyze_holistic_seeded(sys, cfg, None).map(|(report, _)| report)
}

/// [`analyze_holistic`] with an optional warm-start seed; also returns the
/// converged state as the seed for the next run. See [`HolisticSeed`] for
/// the from-below soundness precondition.
pub fn analyze_holistic_seeded(
    sys: &TaskSystem,
    cfg: &AnalysisConfig,
    seed: Option<&HolisticSeed>,
) -> Result<(BoundsReport, HolisticSeed), AnalysisError> {
    HOL_WS.with(|ws| {
        let mut ws = ws.borrow_mut();
        analyze_holistic_in(sys, cfg, seed, &mut ws)
    })
}

/// Verdict-only holistic analysis: `true` iff every job's end-to-end bound
/// is finite and within its deadline. Same fixed point as
/// [`analyze_holistic`] (the verdict agrees with
/// `analyze_holistic(..)?.all_schedulable()` bit for bit) but skips the
/// report and seed assembly, so a warm call allocates nothing — the form
/// the Monte-Carlo admission sweeps want, where only the verdict survives
/// the scenario.
pub fn holistic_schedulable(sys: &TaskSystem, cfg: &AnalysisConfig) -> Result<bool, AnalysisError> {
    HOL_WS.with(|ws| {
        let mut ws = ws.borrow_mut();
        run_fixpoint(sys, cfg, None, &mut ws)?;
        let ws = &*ws;
        for (k, job) in sys.jobs().iter().enumerate() {
            let start = ws.job_start[k];
            let nj = job.subjobs.len();
            if ws.diverged[start..start + nj].iter().any(|&d| d) {
                return Ok(false);
            }
            if ws.response[start + nj - 1] > job.deadline {
                return Ok(false);
            }
        }
        Ok(true)
    })
}

fn analyze_holistic_in(
    sys: &TaskSystem,
    cfg: &AnalysisConfig,
    seed: Option<&HolisticSeed>,
    ws: &mut HolisticWorkspace,
) -> Result<(BoundsReport, HolisticSeed), AnalysisError> {
    let (window, horizon) = run_fixpoint(sys, cfg, seed, ws)?;
    let mut jobs = Vec::with_capacity(sys.jobs().len());
    for (k, job) in sys.jobs().iter().enumerate() {
        let job_id = JobId(k);
        let nj = job.subjobs.len();
        let mut hop_delays = Vec::with_capacity(nj);
        let mut prev = Time::ZERO;
        let mut unbounded = false;
        for j in 0..nj {
            let i = ws.job_start[k] + j;
            if ws.diverged[i] {
                unbounded = true;
                hop_delays.push(None);
            } else {
                hop_delays.push(Some(ws.response[i] - prev));
                prev = ws.response[i];
            }
        }
        let last = ws.job_start[k] + nj - 1;
        let e2e_bound = if unbounded {
            None
        } else {
            Some(ws.response[last])
        };
        jobs.push(JobBound {
            job: job_id,
            hop_delays,
            e2e_bound,
            deadline: job.deadline,
        });
    }
    let report = BoundsReport {
        window,
        horizon,
        jobs,
    };
    let next_seed = HolisticSeed {
        window,
        horizon,
        jitter: ws.jitter.clone(),
        response: ws.response.clone(),
        diverged: ws.diverged.clone(),
    };
    Ok((report, next_seed))
}

/// Converge the jitter iteration, leaving the fixed point in `ws`
/// (`job_start`, `response`, `diverged`). Returns the resolved frame.
fn run_fixpoint(
    sys: &TaskSystem,
    cfg: &AnalysisConfig,
    seed: Option<&HolisticSeed>,
    ws: &mut HolisticWorkspace,
) -> Result<(Time, Time), AnalysisError> {
    sys.validate(true)?;
    crate::exact::require_exact_capable(sys)?;
    ws.periods.clear();
    for (k, job) in sys.jobs().iter().enumerate() {
        match job.arrival {
            ArrivalPattern::Periodic { period, .. } => ws.periods.push(period),
            _ => return Err(AnalysisError::NotPeriodic { job: JobId(k) }),
        }
    }

    let (window, horizon) = cfg.resolve(sys);
    let cap = horizon.max(Time(1)) * 4;
    ws.refs.clear();
    ws.job_start.clear();
    for (k, job) in sys.jobs().iter().enumerate() {
        ws.job_start.push(ws.refs.len());
        for j in 0..job.subjobs.len() {
            ws.refs.push(SubjobRef {
                job: JobId(k),
                index: j,
            });
        }
    }
    let n = ws.refs.len();

    // Jitter per subjob (measured from the job's nominal release).
    // `diverged` marks subjobs past the cap: their interference is capped.
    // A matching seed replaces the all-zero start; the iteration below
    // converges to the same least fixed point from any state below it.
    ws.jitter.clear();
    ws.diverged.clear();
    ws.response.clear();
    match seed {
        Some(s) if s.matches(window, horizon, n) => {
            ws.jitter.extend_from_slice(&s.jitter);
            ws.diverged.extend_from_slice(&s.diverged);
            ws.response.extend_from_slice(&s.response);
        }
        _ => {
            ws.jitter.resize(n, Time::ZERO);
            ws.diverged.resize(n, false);
            ws.response.resize(n, Time::ZERO);
        }
    }
    ws.jitter_next.clear();
    ws.jitter_next.resize(n, Time::ZERO);
    ws.diverged_next.clear();
    ws.diverged_next.resize(n, false);
    ws.response_next.clear();
    ws.response_next.resize(n, Time::ZERO);

    // Resolve each subjob's interference inputs once: its predecessor slot
    // and, per higher-priority peer, (execution, period, jitter slot). The
    // subjobs of one job are contiguous in `refs`, so the predecessor of a
    // non-first hop is the previous dense slot.
    ws.exec.clear();
    ws.period.clear();
    ws.preds.clear();
    ws.hp_flat.clear();
    ws.hp_start.clear();
    for i in 0..n {
        let r = ws.refs[i];
        let s = sys.subjob(r);
        ws.exec.push(s.exec);
        ws.period.push(ws.periods[r.job.0]);
        ws.preds.push((r.index > 0).then(|| i - 1));
        ws.hp_start.push(ws.hp_flat.len());
        let phi = s.priority.expect("validated: priorities assigned");
        for (h, &o) in ws.refs.iter().enumerate() {
            if o == r {
                continue;
            }
            let os = sys.subjob(o);
            if os.processor == s.processor && os.priority.expect("assigned") < phi {
                ws.hp_flat.push((os.exec, ws.periods[o.job.0], h));
            }
        }
    }
    ws.hp_start.push(ws.hp_flat.len());

    const MAX_ROUNDS: usize = 4096;
    let mut rounds = 0;
    loop {
        rounds += 1;
        if rounds > MAX_ROUNDS {
            return Err(AnalysisError::FixpointDiverged { iterations: rounds });
        }
        // Jacobi round: every subjob's busy-window scan reads only the
        // previous round's responses and jitters (the `cur` buffers),
        // writing the `next` buffers. The iteration is monotone from below,
        // so Jacobi and Gauss-Seidel sweeps converge to the same least
        // fixed point.
        let mut changed = false;
        for i in 0..n {
            let c = ws.exec[i];
            let rho = ws.period[i];
            let j_in = ws.preds[i].map_or(Time::ZERO, |p| ws.response[p]);

            // Jitter-aware busy-window scan.
            let mut worst = Time::ZERO;
            let mut q: i64 = 0;
            let mut ok = true;
            loop {
                let mut w = c * (q + 1);
                loop {
                    let mut next = c * (q + 1);
                    for &(ce, pe, je) in &ws.hp_flat[ws.hp_start[i]..ws.hp_start[i + 1]] {
                        let je = ws.jitter[je];
                        let ceil = (w.ticks() + je.ticks() + pe.ticks() - 1).div_euclid(pe.ticks());
                        next += ce * ceil.max(0);
                    }
                    if next == w {
                        break;
                    }
                    w = next;
                    if w > cap {
                        ok = false;
                        break;
                    }
                }
                if !ok {
                    break;
                }
                worst = worst.max(j_in + w - rho * q);
                if w + j_in <= rho * (q + 1) {
                    break;
                }
                q += 1;
                if rho * q > cap {
                    ok = false;
                    break;
                }
            }

            let (new_resp, new_div) = if ok { (worst, false) } else { (cap, true) };
            // A subjob's *release* jitter is what interferes with peers:
            // the response bound of its predecessor hop (zero at the
            // first hop).
            let new_jit = j_in.min(cap);
            changed |=
                new_resp != ws.response[i] || new_div != ws.diverged[i] || new_jit != ws.jitter[i];
            ws.response_next[i] = new_resp;
            ws.diverged_next[i] = new_div;
            ws.jitter_next[i] = new_jit;
        }
        std::mem::swap(&mut ws.response, &mut ws.response_next);
        std::mem::swap(&mut ws.diverged, &mut ws.diverged_next);
        std::mem::swap(&mut ws.jitter, &mut ws.jitter_next);
        if !changed {
            break;
        }
    }
    Ok((window, horizon))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::{rta_uniprocessor, PeriodicTask};
    use crate::exact::analyze_exact_spp;
    use rta_model::priority::{assign_priorities, PriorityPolicy};
    use rta_model::{SchedulerKind, SystemBuilder};

    fn periodic(p: i64) -> ArrivalPattern {
        ArrivalPattern::Periodic {
            period: Time(p),
            offset: Time::ZERO,
        }
    }

    #[test]
    fn single_processor_matches_classic_rta() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        let t1 = b.add_job("T1", Time(100), periodic(4), vec![(p, Time(1))]);
        let t2 = b.add_job("T2", Time(100), periodic(6), vec![(p, Time(2))]);
        let t3 = b.add_job("T3", Time(100), periodic(13), vec![(p, Time(3))]);
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        b.set_priority(SubjobRef { job: t3, index: 0 }, 3);
        let sys = b.build().unwrap();
        let h = analyze_holistic(&sys, &AnalysisConfig::default()).unwrap();
        let ts = [
            PeriodicTask {
                exec: Time(1),
                period: Time(4),
            },
            PeriodicTask {
                exec: Time(2),
                period: Time(6),
            },
            PeriodicTask {
                exec: Time(3),
                period: Time(13),
            },
        ];
        for k in 0..3 {
            assert_eq!(
                h.jobs[k].e2e_bound,
                rta_uniprocessor(&ts, k, Time(100_000)),
                "job {k}"
            );
        }
    }

    #[test]
    fn single_stage_holistic_equals_exact() {
        // The paper's Figure 3 (a)/(d) claim: on one stage both analyses
        // predict the same response times.
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        b.add_job("T1", Time(30), periodic(10), vec![(p, Time(2))]);
        b.add_job("T2", Time(30), periodic(15), vec![(p, Time(4))]);
        b.add_job("T3", Time(30), periodic(30), vec![(p, Time(6))]);
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        let h = analyze_holistic(&sys, &AnalysisConfig::default()).unwrap();
        let e = analyze_exact_spp(&sys, &AnalysisConfig::default()).unwrap();
        for k in 0..3 {
            assert_eq!(
                h.jobs[k].e2e_bound.unwrap(),
                e.jobs[k].wcrt.unwrap(),
                "job {k}"
            );
        }
    }

    #[test]
    fn multi_stage_holistic_dominates_exact() {
        // The Figure 3 (c)/(f) claim: with more stages the holistic bound is
        // no tighter than (and typically looser than) the exact analysis.
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        b.add_job(
            "T1",
            Time(200),
            periodic(20),
            vec![(p1, Time(3)), (p2, Time(4))],
        );
        b.add_job(
            "T2",
            Time(200),
            periodic(30),
            vec![(p1, Time(5)), (p2, Time(6))],
        );
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        let h = analyze_holistic(&sys, &AnalysisConfig::default()).unwrap();
        let e = analyze_exact_spp(&sys, &AnalysisConfig::default()).unwrap();
        for k in 0..2 {
            let hb = h.jobs[k].e2e_bound.unwrap();
            let eb = e.jobs[k].wcrt.unwrap();
            assert!(hb >= eb, "job {k}: holistic {hb:?} < exact {eb:?}");
        }
    }

    #[test]
    fn jitter_propagates_downstream_by_hand() {
        // T1: P1 → P2, alone except for a hp job on P2 that T1's jitter
        // must be charged against. Hand computation:
        //   hop 1 (P1, alone): R₁ = 4.
        //   hop 2 (P2): release jitter J = 4, execution 5, hp task (2, 10)
        //   on P2 with jitter 0: w = 5 + ⌈w/10⌉·2 → w = 7;
        //   R₂ = J + w = 11 = end-to-end bound.
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(50),
            periodic(20),
            vec![(p1, Time(4)), (p2, Time(5))],
        );
        let t2 = b.add_job("T2", Time(10), periodic(10), vec![(p2, Time(2))]);
        b.set_priority(SubjobRef { job: t1, index: 0 }, 1);
        b.set_priority(SubjobRef { job: t1, index: 1 }, 2);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 1);
        let sys = b.build().unwrap();
        let h = analyze_holistic(&sys, &AnalysisConfig::default()).unwrap();
        assert_eq!(h.jobs[0].e2e_bound, Some(Time(11)));
        assert_eq!(h.jobs[0].hop_delays, vec![Some(Time(4)), Some(Time(7))]);
        assert_eq!(h.jobs[1].e2e_bound, Some(Time(2)));
    }

    #[test]
    fn warm_start_from_below_matches_cold() {
        // A scale-up sequence under a pinned frame: the seed of the smaller
        // system sits below the larger system's least fixed point, so the
        // warm run must land on exactly the cold-start result.
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        b.add_job(
            "T1",
            Time(200),
            periodic(20),
            vec![(p1, Time(3)), (p2, Time(4))],
        );
        b.add_job(
            "T2",
            Time(200),
            periodic(30),
            vec![(p1, Time(5)), (p2, Time(6))],
        );
        let mut small = b.build().unwrap();
        assign_priorities(&mut small, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        let big = small.with_scaled_exec(1.25);
        let cfg = AnalysisConfig {
            arrival_window: Some(Time(120)),
            horizon: Some(Time(400)),
            ..AnalysisConfig::default()
        };
        let (_, seed) = analyze_holistic_seeded(&small, &cfg, None).unwrap();
        let cold = analyze_holistic(&big, &cfg).unwrap();
        let (warm, _) = analyze_holistic_seeded(&big, &cfg, Some(&seed)).unwrap();
        assert_eq!(format!("{cold}"), format!("{warm}"));
    }

    #[test]
    fn overload_diverges_to_unschedulable() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        b.add_job("T1", Time(10), periodic(10), vec![(p, Time(6))]);
        b.add_job("T2", Time(10), periodic(10), vec![(p, Time(6))]);
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();
        let h = analyze_holistic(&sys, &AnalysisConfig::default()).unwrap();
        assert!(!h.all_schedulable());
        assert!(h.jobs[1].e2e_bound.is_none());
    }

    #[test]
    fn verdict_only_path_matches_full_report() {
        // Schedulable multi-stage system, unschedulable overload, and a
        // tight single-stage case: the allocation-free verdict must agree
        // with `analyze_holistic(..).all_schedulable()` on each.
        let mk = |execs: &[i64]| {
            let mut b = SystemBuilder::new();
            let p1 = b.add_processor("P1", SchedulerKind::Spp);
            let p2 = b.add_processor("P2", SchedulerKind::Spp);
            for (k, &c) in execs.iter().enumerate() {
                b.add_job(
                    format!("T{k}"),
                    Time(40),
                    periodic(20),
                    vec![(p1, Time(c)), (p2, Time(c))],
                );
            }
            let mut sys = b.build().unwrap();
            assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
            sys
        };
        let cfg = AnalysisConfig::default();
        for execs in [&[2, 3][..], &[9, 9][..], &[6, 7][..]] {
            let sys = mk(execs);
            let full = analyze_holistic(&sys, &cfg).unwrap().all_schedulable();
            let fast = holistic_schedulable(&sys, &cfg).unwrap();
            assert_eq!(full, fast, "execs {execs:?}");
        }
    }

    #[test]
    fn rejects_aperiodic_jobs() {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        b.add_job(
            "T1",
            Time(10),
            ArrivalPattern::Trace(vec![Time(0)]),
            vec![(p, Time(2))],
        );
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();
        assert!(matches!(
            analyze_holistic(&sys, &AnalysisConfig::default()),
            Err(AnalysisError::NotPeriodic { .. })
        ));
    }
}

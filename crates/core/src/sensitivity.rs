//! Sensitivity analysis: how much load a system can absorb before a
//! deadline breaks.
//!
//! The admission experiments of Section 5 ask a yes/no question per system;
//! designers usually want the margin too. [`critical_scaling`] binary
//! searches the largest uniform execution-time scaling factor `λ` under
//! which the system remains schedulable — `λ > 1` means headroom, `λ < 1`
//! means the system is over-committed by that ratio.
//!
//! The bisection is driven by an [`crate::AnalysisSession`]: the scaled
//! system is written into one reusable buffer instead of cloning the
//! `TaskSystem` per step, repeated quantized probes hit the session's
//! verdict memo, and (for [`Oracle::Loops`]) the fixpoint warm-starts from
//! the previous probe's solution.

use crate::config::AnalysisConfig;
use crate::error::AnalysisError;
use crate::session::AnalysisSession;
use rta_model::TaskSystem;

pub mod region;

/// Which analysis backs the schedulability oracle.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Oracle {
    /// Exact analysis — requires an all-SPP system.
    Exact,
    /// Theorem 4 bounds — any scheduler mix.
    Bounds,
    /// Section 6 loop-tolerant fixpoint with the given round budget — any
    /// scheduler mix, including cyclic subjob graphs.
    Loops {
        /// Iteration budget handed to [`crate::fixpoint::analyze_with_loops`].
        max_rounds: usize,
    },
}

/// The largest execution-time scaling factor (within `[lo, hi]`, to
/// `iterations` bisection steps) under which the system stays schedulable.
///
/// Returns `None` if the system is unschedulable even at `lo`. The search
/// assumes monotonicity of schedulability in the scale factor, which holds
/// for the analyses here (scaling all execution times up only increases
/// every workload curve and blocking term).
pub fn critical_scaling(
    sys: &TaskSystem,
    cfg: &AnalysisConfig,
    oracle: Oracle,
    iterations: u32,
) -> Result<Option<f64>, AnalysisError> {
    AnalysisSession::new(sys.clone(), cfg.clone()).critical_scaling(oracle, iterations)
}

/// Convenience: pick the oracle from the system's schedulers.
pub fn default_oracle(sys: &TaskSystem) -> Oracle {
    if sys
        .processors()
        .iter()
        .all(|p| crate::policy::policy_for(p.scheduler).supports_exact())
    {
        Oracle::Exact
    } else {
        Oracle::Bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_curves::Time;
    use rta_model::priority::{assign_priorities, PriorityPolicy};
    use rta_model::{ArrivalPattern, SchedulerKind, SystemBuilder};

    fn sys(util_percent: i64, scheduler: SchedulerKind) -> TaskSystem {
        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", scheduler);
        b.add_job(
            "T1",
            Time(100),
            ArrivalPattern::Periodic {
                period: Time(100),
                offset: Time::ZERO,
            },
            vec![(p, Time(util_percent))],
        );
        let mut s = b.build().unwrap();
        assign_priorities(&mut s, PriorityPolicy::DeadlineMonotonic).unwrap();
        s
    }

    #[test]
    fn headroom_for_light_system() {
        // One job, C=25, T=D=100, alone: schedulable up to λ = 4 exactly.
        let s = sys(25, SchedulerKind::Spp);
        let lam = critical_scaling(&s, &AnalysisConfig::default(), Oracle::Exact, 24)
            .unwrap()
            .unwrap();
        assert!((lam - 4.0).abs() < 0.01, "λ = {lam}");
    }

    #[test]
    fn overcommitted_system_reports_sub_unity() {
        // C=150 > D=100 alone: needs shrinking to ≤ 100/150.
        let s = sys(150, SchedulerKind::Spp);
        let lam = critical_scaling(&s, &AnalysisConfig::default(), Oracle::Exact, 24)
            .unwrap()
            .unwrap();
        assert!(lam < 1.0 && (lam - 100.0 / 150.0).abs() < 0.01, "λ = {lam}");
    }

    #[test]
    fn bounds_oracle_for_non_spp() {
        let s = sys(25, SchedulerKind::Fcfs);
        assert_eq!(default_oracle(&s), Oracle::Bounds);
        let lam = critical_scaling(&s, &AnalysisConfig::default(), Oracle::Bounds, 20)
            .unwrap()
            .unwrap();
        // Alone on FCFS the job is just run-to-completion; headroom near 4
        // minus the Theorem 9 τ-slack.
        assert!(lam > 2.0, "λ = {lam}");
        // Exact oracle must refuse non-SPP.
        assert!(critical_scaling(&s, &AnalysisConfig::default(), Oracle::Exact, 4).is_err());
    }

    #[test]
    fn scaling_helper_clamps_and_rounds_up() {
        let s = sys(25, SchedulerKind::Spp);
        let tiny = s.with_scaled_exec(1e-9);
        assert_eq!(tiny.jobs()[0].subjobs[0].exec, Time(1));
        let up = s.with_scaled_exec(1.5);
        assert_eq!(up.jobs()[0].subjobs[0].exec, Time(38)); // ceil(37.5)
    }
}

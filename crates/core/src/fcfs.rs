//! Service-function bounds for first-come-first-served scheduling
//! (Definition 7, Theorems 7, 8 and 9).
//!
//! FCFS serves aggregate work in arrival order, so per-subjob service is
//! bounded through the processor's **utilization function**
//!
//! ```text
//! U(t) = min( t,  min_{0 ≤ s ≤ t} ( t − s + G(s⁻) ) )        (Theorem 7)
//! ```
//!
//! where `G = Σ c` is the total workload of the processor (Eq. 21) — the
//! left-limit/idle-cap reading mirrors Theorem 3 (see [`crate::spp`]).
//! `U(t)` is how much aggregate work has provably been served by `t`; FCFS
//! then maps the served amount back to a *serving frontier* in time:
//!
//! * **Lower bound** (Theorem 8): our work is only guaranteed served once
//!   the aggregate served amount covers *everything that arrived up to and
//!   including* our arrival instant (simultaneous arrivals are broken
//!   arbitrarily — the paper highlights exactly this ambiguity), so
//!   `S̲(t) = c(v⁻)` with `v = min{ s : G(s) ≥ U(t) + 1 }`.
//! * **Upper bound** (Theorem 9): the `U(t)` oldest units all arrived by
//!   `s* = G⁻¹(U(t))`, so our served work is at most `c(s*) + τ` (the `+τ`
//!   absorbs the partially-served boundary instance), capped by `t`.

use rta_curves::compose::compose;
use rta_curves::{Curve, CurveError, Time};

/// Per-processor FCFS context: the total workload `G` and utilization `U`.
#[derive(Clone, Debug)]
pub struct FcfsProcessor {
    /// Total (upper-bounded) workload `G = Σ c̄` (Eq. 21).
    pub total_workload: Curve,
    /// Utilization function `U` (Theorem 7, left-limit reading).
    pub utilization: Curve,
    /// `G` extended with a sentinel jump past the horizon so that inverse
    /// queries beyond the final arrival resolve to "after everything".
    g_extended_inverse: Curve,
}

impl FcfsProcessor {
    /// Build the processor context from the workload curves of all subjobs
    /// sharing the processor.
    pub fn new(workloads: &[&Curve], horizon: Time) -> Result<FcfsProcessor, CurveError> {
        let mut g = Curve::zero();
        for c in workloads {
            g = g.add(c);
        }
        // U(t) = min(t, t + min_s (G(s⁻) − s)).
        let g_prev = g.shift_right(Time::ONE, 0);
        let run = g_prev.sub(&Curve::identity()).running_min();
        let u = Curve::identity()
            .add(&run)
            .min_with(&Curve::identity())
            .clamp_min(0);
        debug_assert!(u.is_nondecreasing(), "utilization must be nondecreasing");

        // Sentinel: pretend an enormous batch arrives just past the horizon,
        // so G⁻¹(y) for y beyond the real total resolves to horizon + 1 and
        // the workload composition below yields "all of c" there.
        let total = g.sup_on(horizon);
        let sentinel = total + horizon.ticks() + 2;
        let g_ext = g.truncate_after(horizon).add(&Curve::step_from_points(
            0,
            &[(horizon + Time::ONE, sentinel)],
        ));
        let g_ext_inv = g_ext.inverse_curve()?;
        Ok(FcfsProcessor {
            total_workload: g,
            utilization: u,
            g_extended_inverse: g_ext_inv,
        })
    }

    /// Theorem 8 / Theorem 9 service bounds for one subjob of this
    /// processor, given its (upper-bounded) workload `c̄` and execution time
    /// `τ`.
    pub fn service_bounds(
        &self,
        workload: &Curve,
        tau: Time,
    ) -> Result<crate::spnp::ServiceBounds, CurveError> {
        // Lower: frontier v(t) = G⁻¹(U(t) + 1); served ≥ c(v⁻) = c_prev(v).
        let v = compose(&self.g_extended_inverse, &self.utilization.add_const(1))?;
        let c_prev = workload.shift_right(Time::ONE, 0);
        let lower_raw = compose(&c_prev, &v)?;
        let lower = lower_raw
            .min_with(workload)
            .min_with(&Curve::identity())
            .clamp_min(0)
            .running_max();

        // Upper: frontier s*(t) = G⁻¹(U(t)); served ≤ c(s*) + τ, and ≤ t.
        let s_star = compose(&self.g_extended_inverse, &self.utilization)?;
        let upper_raw = compose(workload, &s_star)?.add_const(tau.ticks());
        let upper = upper_raw
            .min_with(&Curve::identity())
            .min_with(workload)
            .clamp_min(0)
            .running_max();

        // The clipped upper bound can only sit above the clipped lower bound.
        let upper = upper.max_with(&lower);
        Ok(crate::spnp::ServiceBounds { lower, upper })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_subjob_utilization_tracks_backlog() {
        // One 5-tick instance at t = 0: busy [0,5), idle after.
        let c = Curve::from_event_times(&[Time(0)]).scale(5);
        let f = FcfsProcessor::new(&[&c], Time(50)).unwrap();
        for t in 0..=10 {
            assert_eq!(f.utilization.eval(Time(t)), t.min(5), "t={t}");
        }
    }

    #[test]
    fn utilization_with_gaps() {
        // 3 ticks at t=0, 3 more at t=10: two busy intervals.
        let c = Curve::from_event_times(&[Time(0), Time(10)]).scale(3);
        let f = FcfsProcessor::new(&[&c], Time(50)).unwrap();
        let expect = |t: i64| -> i64 {
            if t <= 3 {
                t
            } else if t <= 10 {
                3
            } else if t <= 13 {
                3 + (t - 10)
            } else {
                6
            }
        };
        for t in 0..=20 {
            assert_eq!(f.utilization.eval(Time(t)), expect(t), "t={t}");
        }
    }

    #[test]
    fn single_subjob_bounds_bracket_truth() {
        // Alone on the processor, FCFS = run-to-completion: true service is
        // min(t, 5). The lower bound may defer full credit until completion,
        // the upper may advance it by τ — both must bracket the truth.
        let c = Curve::from_event_times(&[Time(0)]).scale(5);
        let f = FcfsProcessor::new(&[&c], Time(50)).unwrap();
        let b = f.service_bounds(&c, Time(5)).unwrap();
        for t in 0..=20 {
            let truth = t.min(5);
            assert!(b.lower.eval(Time(t)) <= truth, "lower at t={t}");
            assert!(b.upper.eval(Time(t)) >= truth, "upper at t={t}");
        }
        // The instance is provably fully served by its completion time 5.
        assert_eq!(b.lower.eval(Time(5)), 5);
        // Departure bounds: completes somewhere in [0, 5].
        let dep_lo = b.lower.floor_div(5, Time(50)).unwrap();
        assert_eq!(dep_lo.event_time(1), Some(Time(5)));
    }

    #[test]
    fn two_flows_share_in_arrival_order() {
        // Flow A: 4 ticks at t=0. Flow B: 4 ticks at t=2. FCFS serves A
        // first, B during [4, 8).
        let ca = Curve::from_event_times(&[Time(0)]).scale(4);
        let cb = Curve::from_event_times(&[Time(2)]).scale(4);
        let f = FcfsProcessor::new(&[&ca, &cb], Time(50)).unwrap();
        let ba = f.service_bounds(&ca, Time(4)).unwrap();
        let bb = f.service_bounds(&cb, Time(4)).unwrap();
        // A is provably done by 4; B by 8.
        assert_eq!(ba.lower.eval(Time(4)), 4);
        assert_eq!(bb.lower.eval(Time(4)), 0);
        assert_eq!(bb.lower.eval(Time(8)), 4);
        // B cannot be done before A's work is out of the way: even the upper
        // bound gives B at most τ credit before t = 4.
        assert!(bb.upper.eval(Time(3)) <= 4);
        // Bounds bracket the true FCFS schedule (A: [0,4), B: [4,8)).
        for t in 0..=20 {
            let truth_a = t.min(4);
            let truth_b = (t - 4).clamp(0, 4);
            assert!(ba.lower.eval(Time(t)) <= truth_a, "A lower t={t}");
            assert!(ba.upper.eval(Time(t)) >= truth_a, "A upper t={t}");
            assert!(bb.lower.eval(Time(t)) <= truth_b, "B lower t={t}");
            assert!(bb.upper.eval(Time(t)) >= truth_b, "B upper t={t}");
        }
    }

    #[test]
    fn simultaneous_arrivals_lower_bound_waits_for_both() {
        // Two flows arriving together: the tie is broken arbitrarily, so
        // neither is guaranteed anything until both could have been served.
        let ca = Curve::from_event_times(&[Time(0)]).scale(3);
        let cb = Curve::from_event_times(&[Time(0)]).scale(4);
        let f = FcfsProcessor::new(&[&ca, &cb], Time(50)).unwrap();
        let ba = f.service_bounds(&ca, Time(3)).unwrap();
        // A's 3 units are only guaranteed once all 7 units are served.
        assert_eq!(ba.lower.eval(Time(6)), 0);
        assert_eq!(ba.lower.eval(Time(7)), 3);
        // But A may also have gone first.
        assert!(ba.upper.eval(Time(3)) >= 3);
    }

    #[test]
    fn idle_processor_has_identity_bounds_at_zero() {
        let c = Curve::zero();
        let f = FcfsProcessor::new(&[&c], Time(10)).unwrap();
        let b = f.service_bounds(&c, Time(1)).unwrap();
        for t in 0..=10 {
            assert_eq!(b.lower.eval(Time(t)), 0);
        }
    }
}

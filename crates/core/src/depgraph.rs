//! Subjob dependency graph and evaluation order.
//!
//! Computing the service function of a subjob needs:
//!
//! 1. its own arrival function — the departure function of its predecessor
//!    hop (chain edge);
//! 2. on [`crate::policy::PeerInputs::HigherPriorityServices`] processors
//!    (SPP/SPNP): the service functions of all strictly higher-priority
//!    subjobs on the same processor (the summations of Theorems 3, 5, 6);
//! 3. on [`crate::policy::PeerInputs::SharedWorkloads`] processors
//!    (FCFS, IWRR): the *arrival* functions of every subjob sharing the
//!    processor (the total workload `G` of Theorem 7; IWRR's round
//!    length) — i.e. the departures of those subjobs' predecessor hops,
//!    not the subjobs themselves.
//!
//! When this relation is acyclic, one topological pass computes everything.
//! A cycle is the paper's Section 6 "physical/logical loop"; it is reported
//! as [`AnalysisError::CyclicDependency`] and handled by [`crate::fixpoint`].

use crate::error::AnalysisError;
use crate::policy::{policy_for, PeerInputs};
use rta_model::{SubjobRef, TaskSystem};

/// Dense index for subjobs within one analysis run.
#[derive(Debug)]
pub struct SubjobIndex {
    refs: Vec<SubjobRef>,
    lookup: std::collections::HashMap<SubjobRef, usize>,
}

impl SubjobIndex {
    /// Enumerate all subjobs of a system.
    pub fn new(sys: &TaskSystem) -> SubjobIndex {
        let refs: Vec<SubjobRef> = sys.all_subjobs().collect();
        let lookup = refs.iter().enumerate().map(|(i, r)| (*r, i)).collect();
        SubjobIndex { refs, lookup }
    }

    /// Number of subjobs.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// `true` when the system has no subjobs.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Subjob at a dense index.
    pub fn subjob(&self, i: usize) -> SubjobRef {
        self.refs[i]
    }

    /// Dense index of a subjob.
    pub fn index(&self, r: SubjobRef) -> usize {
        self.lookup[&r]
    }

    /// All subjob references in enumeration order.
    pub fn refs(&self) -> &[SubjobRef] {
        &self.refs
    }
}

/// Build the dependency edge list (`from → to` as dense indices).
pub fn dependency_edges(sys: &TaskSystem, idx: &SubjobIndex) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for (i, &r) in idx.refs().iter().enumerate() {
        // Chain edge from the predecessor hop.
        if r.index > 0 {
            let pred = SubjobRef {
                job: r.job,
                index: r.index - 1,
            };
            edges.push((idx.index(pred), i));
        }
        let s = sys.subjob(r);
        match policy_for(sys.processor(s.processor).scheduler).peer_inputs() {
            PeerInputs::HigherPriorityServices => {
                for h in sys.higher_priority_peers(r) {
                    edges.push((idx.index(h), i));
                }
            }
            PeerInputs::SharedWorkloads => {
                // Need every sharing subjob's arrival, i.e. its predecessor's
                // departure (first hops have primary arrivals — no edge).
                for o in sys.subjobs_on(s.processor) {
                    if o != r && o.index > 0 {
                        let pred = SubjobRef {
                            job: o.job,
                            index: o.index - 1,
                        };
                        let p = idx.index(pred);
                        if p != i {
                            edges.push((p, i));
                        }
                    }
                }
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Dependency edges with forward **and** reverse adjacency, the substrate of
/// incremental invalidation: forward edges give "who must be recomputed
/// after me", reverse edges give "whose outputs I read".
#[derive(Debug)]
pub struct DepGraph {
    out: Vec<Vec<usize>>,
    input: Vec<Vec<usize>>,
}

impl DepGraph {
    /// Build both adjacency directions from [`dependency_edges`].
    pub fn new(sys: &TaskSystem, idx: &SubjobIndex) -> DepGraph {
        let n = idx.len();
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut input: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (a, b) in dependency_edges(sys, idx) {
            out[a].push(b);
            input[b].push(a);
        }
        DepGraph { out, input }
    }

    /// Number of subjobs (nodes).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Subjobs whose curves must be recomputed when `i` changes.
    pub fn dependents(&self, i: usize) -> &[usize] {
        &self.out[i]
    }

    /// Subjobs whose curves `i` reads.
    pub fn inputs(&self, i: usize) -> &[usize] {
        &self.input[i]
    }
}

/// The downstream closure of a set of directly-invalidated subjobs.
///
/// After a delta (execution-time change, priority move, job added/removed),
/// the subjobs whose inputs changed are marked with [`DirtyCone::mark`];
/// [`DirtyCone::propagate`] closes the set over the forward edges of a
/// [`DepGraph`]. Everything outside the cone may reuse its previous curves
/// verbatim — its inputs are bit-identical to the previous run.
#[derive(Debug, Clone)]
pub struct DirtyCone {
    dirty: Vec<bool>,
}

impl DirtyCone {
    /// An all-clean cone over `n` subjobs.
    pub fn clean(n: usize) -> DirtyCone {
        DirtyCone {
            dirty: vec![false; n],
        }
    }

    /// An all-dirty cone over `n` subjobs (full recompute).
    pub fn all(n: usize) -> DirtyCone {
        DirtyCone {
            dirty: vec![true; n],
        }
    }

    /// Mark one subjob as directly invalidated.
    pub fn mark(&mut self, i: usize) {
        self.dirty[i] = true;
    }

    /// Close the dirty set over the forward dependency edges (BFS).
    pub fn propagate(&mut self, graph: &DepGraph) {
        assert_eq!(graph.len(), self.dirty.len());
        let mut frontier: std::collections::VecDeque<usize> =
            (0..self.dirty.len()).filter(|&i| self.dirty[i]).collect();
        while let Some(i) = frontier.pop_front() {
            for &j in graph.dependents(i) {
                if !self.dirty[j] {
                    self.dirty[j] = true;
                    frontier.push_back(j);
                }
            }
        }
    }

    /// Whether subjob `i` must be recomputed.
    pub fn is_dirty(&self, i: usize) -> bool {
        self.dirty[i]
    }

    /// Number of subjobs in the cone.
    pub fn dirty_count(&self) -> usize {
        self.dirty.iter().filter(|&&d| d).count()
    }

    /// Total number of subjobs tracked.
    pub fn len(&self) -> usize {
        self.dirty.len()
    }

    /// `true` when the cone tracks no subjobs.
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }
}

/// Topologically order the subjobs; errors with the residual node set on a
/// cycle.
pub fn evaluation_order(sys: &TaskSystem, idx: &SubjobIndex) -> Result<Vec<usize>, AnalysisError> {
    let n = idx.len();
    let edges = dependency_edges(sys, idx);
    let mut indegree = vec![0usize; n];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in &edges {
        indegree[b] += 1;
        out[a].push(b);
    }
    let mut queue: std::collections::VecDeque<usize> =
        (0..n).filter(|i| indegree[*i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop_front() {
        order.push(i);
        for &j in &out[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                queue.push_back(j);
            }
        }
    }
    if order.len() < n {
        let cycle = (0..n)
            .filter(|i| indegree[*i] > 0)
            .map(|i| idx.subjob(i))
            .collect();
        return Err(AnalysisError::CyclicDependency { cycle });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_curves::Time;
    use rta_model::priority::{assign_priorities, PriorityPolicy};
    use rta_model::{ArrivalPattern, JobId, SchedulerKind, SystemBuilder};

    fn periodic(p: i64) -> ArrivalPattern {
        ArrivalPattern::Periodic {
            period: Time(p),
            offset: Time::ZERO,
        }
    }

    #[test]
    fn chain_and_priority_edges() {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(50),
            periodic(50),
            vec![(p1, Time(5)), (p2, Time(5))],
        );
        let t2 = b.add_job("T2", Time(90), periodic(90), vec![(p1, Time(9))]);
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();
        let idx = SubjobIndex::new(&sys);
        let order = evaluation_order(&sys, &idx).unwrap();
        let pos = |r: SubjobRef| order.iter().position(|&i| idx.subjob(i) == r).unwrap();
        // T1 hop 0 before hop 1 (chain) and before T2 hop 0 (priority).
        let t1h0 = SubjobRef { job: t1, index: 0 };
        let t1h1 = SubjobRef { job: t1, index: 1 };
        let t2h0 = SubjobRef { job: t2, index: 0 };
        assert!(pos(t1h0) < pos(t1h1));
        assert!(pos(t1h0) < pos(t2h0));
        let _ = JobId(0);
    }

    #[test]
    fn fcfs_needs_peer_predecessors() {
        // T1: P1 → P2 (FCFS). T2: single hop on P2. Computing T2's FCFS
        // bound needs T1 hop 0's departure (arrival of T1 hop 1 on P2).
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Fcfs);
        let p2 = b.add_processor("P2", SchedulerKind::Fcfs);
        let t1 = b.add_job(
            "T1",
            Time(50),
            periodic(50),
            vec![(p1, Time(5)), (p2, Time(5))],
        );
        let t2 = b.add_job("T2", Time(90), periodic(90), vec![(p2, Time(9))]);
        let sys = b.build().unwrap();
        let idx = SubjobIndex::new(&sys);
        let edges = dependency_edges(&sys, &idx);
        let t1h0 = idx.index(SubjobRef { job: t1, index: 0 });
        let t2h0 = idx.index(SubjobRef { job: t2, index: 0 });
        assert!(edges.contains(&(t1h0, t2h0)));
        assert!(evaluation_order(&sys, &idx).is_ok());
    }

    #[test]
    fn physical_loop_is_detected() {
        // A job visiting the same processor twice with interleaved
        // priorities creates the Section 6 cycle: T1 hop 1 depends on T2
        // hop 0 (higher priority on P2), which depends on T2's... build the
        // classic two-job figure-eight.
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        // T1: P1 then P2; T2: P2 then P1.
        let t1 = b.add_job(
            "T1",
            Time(50),
            periodic(50),
            vec![(p1, Time(5)), (p2, Time(5))],
        );
        let t2 = b.add_job(
            "T2",
            Time(50),
            periodic(50),
            vec![(p2, Time(5)), (p1, Time(5))],
        );
        // Priorities chosen to close the loop: on P1, T2's hop 1 outranks
        // T1's hop 0; on P2, T1's hop 1 outranks T2's hop 0.
        b.set_priority(SubjobRef { job: t1, index: 0 }, 2);
        b.set_priority(SubjobRef { job: t2, index: 1 }, 1);
        b.set_priority(SubjobRef { job: t1, index: 1 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let idx = SubjobIndex::new(&sys);
        match evaluation_order(&sys, &idx) {
            Err(AnalysisError::CyclicDependency { cycle }) => {
                assert!(cycle.len() >= 2, "cycle must name participants");
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn dirty_cone_closes_downstream_only() {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(50),
            periodic(50),
            vec![(p1, Time(5)), (p2, Time(5))],
        );
        let t2 = b.add_job("T2", Time(90), periodic(90), vec![(p1, Time(9))]);
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();
        let idx = SubjobIndex::new(&sys);
        let graph = DepGraph::new(&sys, &idx);
        let t1h0 = idx.index(SubjobRef { job: t1, index: 0 });
        let t1h1 = idx.index(SubjobRef { job: t1, index: 1 });
        let t2h0 = idx.index(SubjobRef { job: t2, index: 0 });
        // Reverse edges mirror the forward ones.
        assert!(graph.dependents(t1h0).contains(&t1h1));
        assert!(graph.inputs(t2h0).contains(&t1h0));
        // Dirtying the root pulls in the chain successor and the
        // lower-priority peer; dirtying a leaf pulls in nothing else.
        let mut cone = DirtyCone::clean(idx.len());
        cone.mark(t1h0);
        cone.propagate(&graph);
        assert!(cone.is_dirty(t1h0) && cone.is_dirty(t1h1) && cone.is_dirty(t2h0));
        assert_eq!(cone.dirty_count(), 3);
        let mut leaf = DirtyCone::clean(idx.len());
        leaf.mark(t1h1);
        leaf.propagate(&graph);
        assert_eq!(leaf.dirty_count(), 1);
        assert!(!leaf.is_dirty(t2h0));
        assert_eq!(DirtyCone::all(idx.len()).dirty_count(), idx.len());
    }

    #[test]
    fn independent_jobs_any_order() {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        let t1 = b.add_job("T1", Time(50), periodic(50), vec![(p1, Time(5))]);
        let t2 = b.add_job("T2", Time(50), periodic(50), vec![(p2, Time(5))]);
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();
        let idx = SubjobIndex::new(&sys);
        assert!(dependency_edges(&sys, &idx).is_empty());
        assert_eq!(evaluation_order(&sys, &idx).unwrap().len(), 2);
        let _ = (t1, t2);
    }
}

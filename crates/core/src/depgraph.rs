//! Subjob dependency graph and evaluation order.
//!
//! Computing the service function of a subjob needs:
//!
//! 1. its own arrival function — the departure function of its predecessor
//!    hop (chain edge);
//! 2. on SPP/SPNP processors: the service functions of all strictly
//!    higher-priority subjobs on the same processor (the summations of
//!    Theorems 3, 5 and 6);
//! 3. on FCFS processors: the *arrival* functions of every subjob sharing
//!    the processor (the total workload `G` of Theorem 7) — i.e. the
//!    departures of those subjobs' predecessor hops, not the subjobs
//!    themselves.
//!
//! When this relation is acyclic, one topological pass computes everything.
//! A cycle is the paper's Section 6 "physical/logical loop"; it is reported
//! as [`AnalysisError::CyclicDependency`] and handled by [`crate::fixpoint`].

use crate::error::AnalysisError;
use rta_model::{SchedulerKind, SubjobRef, TaskSystem};

/// Dense index for subjobs within one analysis run.
#[derive(Debug)]
pub struct SubjobIndex {
    refs: Vec<SubjobRef>,
    lookup: std::collections::HashMap<SubjobRef, usize>,
}

impl SubjobIndex {
    /// Enumerate all subjobs of a system.
    pub fn new(sys: &TaskSystem) -> SubjobIndex {
        let refs: Vec<SubjobRef> = sys.all_subjobs().collect();
        let lookup = refs.iter().enumerate().map(|(i, r)| (*r, i)).collect();
        SubjobIndex { refs, lookup }
    }

    /// Number of subjobs.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// `true` when the system has no subjobs.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Subjob at a dense index.
    pub fn subjob(&self, i: usize) -> SubjobRef {
        self.refs[i]
    }

    /// Dense index of a subjob.
    pub fn index(&self, r: SubjobRef) -> usize {
        self.lookup[&r]
    }

    /// All subjob references in enumeration order.
    pub fn refs(&self) -> &[SubjobRef] {
        &self.refs
    }
}

/// Build the dependency edge list (`from → to` as dense indices).
pub fn dependency_edges(sys: &TaskSystem, idx: &SubjobIndex) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for (i, &r) in idx.refs().iter().enumerate() {
        // Chain edge from the predecessor hop.
        if r.index > 0 {
            let pred = SubjobRef {
                job: r.job,
                index: r.index - 1,
            };
            edges.push((idx.index(pred), i));
        }
        let s = sys.subjob(r);
        match sys.processor(s.processor).scheduler {
            SchedulerKind::Spp | SchedulerKind::Spnp => {
                for h in sys.higher_priority_peers(r) {
                    edges.push((idx.index(h), i));
                }
            }
            SchedulerKind::Fcfs => {
                // Need every sharing subjob's arrival, i.e. its predecessor's
                // departure (first hops have primary arrivals — no edge).
                for o in sys.subjobs_on(s.processor) {
                    if o != r && o.index > 0 {
                        let pred = SubjobRef {
                            job: o.job,
                            index: o.index - 1,
                        };
                        let p = idx.index(pred);
                        if p != i {
                            edges.push((p, i));
                        }
                    }
                }
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Topologically order the subjobs; errors with the residual node set on a
/// cycle.
pub fn evaluation_order(sys: &TaskSystem, idx: &SubjobIndex) -> Result<Vec<usize>, AnalysisError> {
    let n = idx.len();
    let edges = dependency_edges(sys, idx);
    let mut indegree = vec![0usize; n];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in &edges {
        indegree[b] += 1;
        out[a].push(b);
    }
    let mut queue: std::collections::VecDeque<usize> =
        (0..n).filter(|i| indegree[*i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop_front() {
        order.push(i);
        for &j in &out[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                queue.push_back(j);
            }
        }
    }
    if order.len() < n {
        let cycle = (0..n)
            .filter(|i| indegree[*i] > 0)
            .map(|i| idx.subjob(i))
            .collect();
        return Err(AnalysisError::CyclicDependency { cycle });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_curves::Time;
    use rta_model::priority::{assign_priorities, PriorityPolicy};
    use rta_model::{ArrivalPattern, JobId, SystemBuilder};

    fn periodic(p: i64) -> ArrivalPattern {
        ArrivalPattern::Periodic {
            period: Time(p),
            offset: Time::ZERO,
        }
    }

    #[test]
    fn chain_and_priority_edges() {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        let t1 = b.add_job(
            "T1",
            Time(50),
            periodic(50),
            vec![(p1, Time(5)), (p2, Time(5))],
        );
        let t2 = b.add_job("T2", Time(90), periodic(90), vec![(p1, Time(9))]);
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();
        let idx = SubjobIndex::new(&sys);
        let order = evaluation_order(&sys, &idx).unwrap();
        let pos = |r: SubjobRef| order.iter().position(|&i| idx.subjob(i) == r).unwrap();
        // T1 hop 0 before hop 1 (chain) and before T2 hop 0 (priority).
        let t1h0 = SubjobRef { job: t1, index: 0 };
        let t1h1 = SubjobRef { job: t1, index: 1 };
        let t2h0 = SubjobRef { job: t2, index: 0 };
        assert!(pos(t1h0) < pos(t1h1));
        assert!(pos(t1h0) < pos(t2h0));
        let _ = JobId(0);
    }

    #[test]
    fn fcfs_needs_peer_predecessors() {
        // T1: P1 → P2 (FCFS). T2: single hop on P2. Computing T2's FCFS
        // bound needs T1 hop 0's departure (arrival of T1 hop 1 on P2).
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Fcfs);
        let p2 = b.add_processor("P2", SchedulerKind::Fcfs);
        let t1 = b.add_job(
            "T1",
            Time(50),
            periodic(50),
            vec![(p1, Time(5)), (p2, Time(5))],
        );
        let t2 = b.add_job("T2", Time(90), periodic(90), vec![(p2, Time(9))]);
        let sys = b.build().unwrap();
        let idx = SubjobIndex::new(&sys);
        let edges = dependency_edges(&sys, &idx);
        let t1h0 = idx.index(SubjobRef { job: t1, index: 0 });
        let t2h0 = idx.index(SubjobRef { job: t2, index: 0 });
        assert!(edges.contains(&(t1h0, t2h0)));
        assert!(evaluation_order(&sys, &idx).is_ok());
    }

    #[test]
    fn physical_loop_is_detected() {
        // A job visiting the same processor twice with interleaved
        // priorities creates the Section 6 cycle: T1 hop 1 depends on T2
        // hop 0 (higher priority on P2), which depends on T2's... build the
        // classic two-job figure-eight.
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        // T1: P1 then P2; T2: P2 then P1.
        let t1 = b.add_job(
            "T1",
            Time(50),
            periodic(50),
            vec![(p1, Time(5)), (p2, Time(5))],
        );
        let t2 = b.add_job(
            "T2",
            Time(50),
            periodic(50),
            vec![(p2, Time(5)), (p1, Time(5))],
        );
        // Priorities chosen to close the loop: on P1, T2's hop 1 outranks
        // T1's hop 0; on P2, T1's hop 1 outranks T2's hop 0.
        b.set_priority(SubjobRef { job: t1, index: 0 }, 2);
        b.set_priority(SubjobRef { job: t2, index: 1 }, 1);
        b.set_priority(SubjobRef { job: t1, index: 1 }, 1);
        b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
        let sys = b.build().unwrap();
        let idx = SubjobIndex::new(&sys);
        match evaluation_order(&sys, &idx) {
            Err(AnalysisError::CyclicDependency { cycle }) => {
                assert!(cycle.len() >= 2, "cycle must name participants");
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn independent_jobs_any_order() {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Spp);
        let t1 = b.add_job("T1", Time(50), periodic(50), vec![(p1, Time(5))]);
        let t2 = b.add_job("T2", Time(50), periodic(50), vec![(p2, Time(5))]);
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();
        let idx = SubjobIndex::new(&sys);
        assert!(dependency_edges(&sys, &idx).is_empty());
        assert_eq!(evaluation_order(&sys, &idx).unwrap().len(), 2);
        let _ = (t1, t2);
    }
}

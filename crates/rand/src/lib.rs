//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the thin slice of `rand` it actually uses: a seedable
//! generator ([`rngs::StdRng`]), the [`Rng`] extension trait with
//! `gen`/`gen_range`/`gen_bool`, and [`SeedableRng::seed_from_u64`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), which is explicitly permitted:
//! upstream documents `StdRng` streams as non-portable across versions.
//! Everything in this workspace treats seeds as opaque reproducibility
//! handles, never as cross-implementation fixtures.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A low-level generator of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from uniform bits via `Rng::gen` (upstream's `Standard`
/// distribution).
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Half-open ranges samplable via `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire widening-multiply mapping; the modulo bias of a naive `%` is
    // avoided without a rejection loop (span ≪ 2⁶⁴ everywhere we sample).
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty => $u:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                // Span through the same-width unsigned type so signed ranges
                // spanning zero do not sign-extend into the u64 span.
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )+};
}

int_sample_range!(i32 => u32, u32 => u32, i64 => u64, u64 => u64, usize => usize);

macro_rules! int_sample_range_inclusive {
    ($($t:ty => $u:ty),+) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                // `end − start + 1` as the span; the full-domain range would
                // overflow the span but never occurs in this workspace.
                let span = (end.wrapping_sub(start) as $u as u64) + 1;
                start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )+};
}

int_sample_range_inclusive!(i32 => u32, u32 => u32, i64 => u64, u64 => u64, usize => usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing sampling interface (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of `T` from the standard distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from one word.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let i = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&i));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
            let f = rng.gen_range(2.0f64..3.5);
            assert!((2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let ones = (0..n).filter(|_| rng.gen::<bool>()).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "bool frac {frac}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.2)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.02, "{frac}");
    }
}

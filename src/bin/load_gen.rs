//! `load_gen` — synthetic tenant request streams against the resident
//! admission service.
//!
//! Loads a fleet of warm tenants (deterministic job-shop systems), then
//! replays a mixed stream of `ADMIT` probes, `REMOVE` rollbacks, and
//! periodic `STATS` reads through [`ShardedService::apply_batch`] — the
//! same dispatch path the daemon's serve loop uses. Writes
//! `BENCH_service.json` with the gate-tracked `service/requests_per_sec`
//! row (as ns/request, the harness's lower-is-better unit; the req/s
//! figure is printed) plus `service/latency_p50` and
//! `service/latency_p99` — per-request latency quantiles streamed
//! through the same P² sketches the WCDFP engine uses, so tail latency
//! is gated alongside throughput — and hard-fails below the 10k req/s
//! floor from ROADMAP item 1.
//!
//! Usage: `cargo run --release --bin load_gen [-- --duration S]`
//! (`--seconds` is accepted as an alias.)

use std::sync::Arc;
use std::time::Instant;

use bursty_rta::analysis::service::ServiceConfig;
use bursty_rta::daemon::ShardedService;
use bursty_rta::proto::{Request, Response};
use bursty_rta::textfmt::{HopSpec, JobDraft};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rta_bench::harness::Bench;
use rta_core::wcdfp::P2Sketch;
use rta_curves::Time;
use rta_model::jobshop::{generate, ShopArrivals, ShopConfig};
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::{ArrivalPattern, SchedulerKind, TaskSystem};

const TENANTS: usize = 8;
const MIN_REQ_PER_SEC: f64 = 10_000.0;

fn tenant_system(seed: u64) -> TaskSystem {
    let cfg = ShopConfig {
        stages: 2,
        procs_per_stage: 2,
        n_jobs: 6,
        scheduler: SchedulerKind::Spp,
        utilization: 0.5,
        arrivals: ShopArrivals::Periodic {
            deadline_factor: 4.0,
        },
        x_min: 0.2,
        ticks_per_unit: 500,
    };
    let mut sys = generate(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    sys
}

/// A light two-hop probe job; the exec demand cycles so verdicts exercise
/// both the memo table and fresh warm analyses, like a real mixed fleet.
fn candidate(round: u64) -> JobDraft {
    JobDraft {
        name: format!("probe{round}"),
        deadline: 50_000,
        arrival: ArrivalPattern::Periodic {
            period: Time(25_000),
            offset: Time(0),
        },
        hops: vec![
            HopSpec {
                processor: "S1P1".into(),
                exec: 1 + (round as i64 * 7) % 13,
                priority: None,
                weight: None,
            },
            HopSpec {
                processor: "S2P1".into(),
                exec: 1 + (round as i64 * 5) % 11,
                priority: None,
                weight: None,
            },
        ],
    }
}

fn batch_for(round: u64, tenants: &[String]) -> Vec<Request> {
    let mut reqs = Vec::with_capacity(tenants.len() * 3);
    for tenant in tenants {
        reqs.push(Request::Admit {
            tenant: tenant.clone(),
            job: candidate(round),
        });
        reqs.push(Request::Remove {
            tenant: tenant.clone(),
            job: format!("probe{round}"),
        });
        if round.is_multiple_of(8) {
            reqs.push(Request::Stats {
                tenant: tenant.clone(),
            });
        }
    }
    reqs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seconds: f64 = match args.as_slice() {
        [] => 1.0,
        [flag, s] if flag == "--duration" || flag == "--seconds" => {
            s.parse().expect("bad duration value")
        }
        _ => {
            eprintln!("usage: load_gen [--duration S]");
            std::process::exit(2);
        }
    };

    let svc = Arc::new(ShardedService::new(ServiceConfig::default(), TENANTS));
    let tenants: Vec<String> = (0..TENANTS).map(|i| format!("tenant{i}")).collect();
    for (i, tenant) in tenants.iter().enumerate() {
        let out = svc.load_full(tenant, tenant_system(i as u64)).unwrap();
        assert!(
            out.schedulable,
            "{tenant}: baseline system must be schedulable"
        );
    }
    println!(
        "loaded {} warm tenants across {} shard(s)",
        svc.tenant_count(),
        svc.shard_count()
    );

    // Warm the sessions and the verdict paths before timing.
    for round in 0..4 {
        svc.apply_batch(batch_for(round, &tenants));
    }

    let mut total: u64 = 0;
    let mut admitted: u64 = 0;
    let mut errors: u64 = 0;
    let mut round: u64 = 100;
    // Per-request latency, streamed through the same P² quantile sketches
    // the WCDFP engine uses — no sample buffer, O(1) per observation. A
    // batch is timed as one dispatch (that is the daemon's unit of work)
    // and each request in it is charged the batch mean.
    let mut p50 = P2Sketch::new(0.5);
    let mut p99 = P2Sketch::new(0.99);
    let start = Instant::now();
    while start.elapsed().as_secs_f64() < seconds {
        let reqs = batch_for(round, &tenants);
        let len = reqs.len() as u64;
        total += len;
        let t0 = Instant::now();
        let resps = svc.apply_batch(reqs);
        let per_req_ns = t0.elapsed().as_nanos() as f64 / len as f64;
        for _ in 0..len {
            p50.observe(per_req_ns);
            p99.observe(per_req_ns);
        }
        for resp in resps {
            match resp {
                Response::Admitted { admitted: true, .. } => admitted += 1,
                Response::Err { .. } => errors += 1,
                _ => {}
            }
        }
        round += 1;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let req_per_sec = total as f64 / elapsed;
    let ns_per_req = elapsed * 1e9 / total as f64;
    println!(
        "{total} requests in {elapsed:.2}s across {TENANTS} tenants: \
         {req_per_sec:.0} req/s ({ns_per_req:.0} ns/request), \
         {admitted} admitted, {errors} errors"
    );
    assert!(
        admitted > 0,
        "stream sanity: no probe was ever admitted — candidate shape is wrong"
    );

    let (lat50, lat99) = (
        p50.value().expect("latency sketch is non-empty"),
        p99.value().expect("latency sketch is non-empty"),
    );
    println!("request latency: p50 {lat50:.0} ns, p99 {lat99:.0} ns");

    let mut b = Bench::new();
    b.record("service/requests_per_sec", total, ns_per_req);
    b.record("service/latency_p50", total, lat50);
    b.record("service/latency_p99", total, lat99);
    let json = b.to_json(&[
        ("suite", "BENCH_service"),
        ("package", "bursty-rta"),
        ("profile", "release"),
        ("tenants", "8"),
    ]);
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    println!(
        "wrote BENCH_service.json ({} benchmarks)",
        b.results().len()
    );

    if req_per_sec < MIN_REQ_PER_SEC {
        eprintln!(
            "load_gen: FAIL — {req_per_sec:.0} req/s is below the {MIN_REQ_PER_SEC:.0} req/s floor"
        );
        std::process::exit(1);
    }
}

//! `rta-admit` — admission control for distributed job-chain systems, as a
//! one-shot analyzer or a resident daemon.
//!
//! ```text
//! Usage: rta-admit <file> [<file> …]     analyze system descriptions
//!        rta-admit --wcdfp <file> […]    Monte-Carlo deadline-failure probability
//!        rta-admit --serve               serve the line protocol on stdin/stdout
//!        rta-admit --serve-unix <path>   serve the line protocol on a unix socket
//!        rta-admit --example             print an annotated example file
//! ```
//!
//! Both modes run the same service core
//! ([`bursty_rta::analysis::service::AdmissionService`] behind
//! [`bursty_rta::daemon::ShardedService`]): a one-shot run loads each file
//! as a throwaway tenant and prints its report; the daemon keeps tenants'
//! `AnalysisSession`s warm between requests and answers `ADMIT` probes via
//! the delta API. The file format and the protocol grammar are documented
//! in [`bursty_rta::textfmt`] and [`bursty_rta::proto`]; exit status is 0
//! iff every analyzed system is schedulable, 1 if any is not, 2 on
//! usage/IO/parse errors.

use std::sync::Arc;

use bursty_rta::analysis::par::pool_map;
use bursty_rta::analysis::service::{LoadOutcome, ServiceConfig};
use bursty_rta::daemon::{serve, serve_unix, ShardedService};
use bursty_rta::model::TaskSystem;
use bursty_rta::textfmt::{parse_system, ParseError, EXAMPLE};
use rta_core::wcdfp::Stopping;
use rta_sim::wcdfp::{estimate_adaptive, DrawModel, WcdfpConfig};

const USAGE: &str = "usage: rta-admit <file> [<file> …] | --wcdfp <file> [<file> …] | \
     --serve | --serve-unix <path> | --example";

/// Print a located parse diagnostic: `path:line: message` plus the
/// offending line, so editors can jump straight to it.
fn report_parse_error(path: &str, e: &ParseError) {
    if e.line > 0 {
        eprintln!("rta-admit: {path}:{}: {}", e.line, e.msg);
        eprintln!("    | {}", e.text);
    } else {
        eprintln!("rta-admit: {path}: {}", e.msg);
    }
}

/// Load every named system into the service over the worker pool; results
/// come back in argument order.
fn load_all(
    svc: &Arc<ShardedService>,
    items: Vec<(String, TaskSystem)>,
) -> Vec<Result<LoadOutcome, String>> {
    let items = Arc::new(items);
    let (svc2, items2) = (Arc::clone(svc), Arc::clone(&items));
    pool_map(items.len(), move |i| {
        let (name, sys) = &items2[i];
        svc2.load_full(name, sys.clone()).map_err(|e| e.to_string())
    })
}

fn run_files(paths: &[String]) -> i32 {
    let mut items = Vec::with_capacity(paths.len());
    for path in paths {
        let input = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rta-admit: cannot read {path}: {e}");
                return 2;
            }
        };
        match parse_system(&input) {
            Ok(sys) => items.push((path.clone(), sys)),
            Err(e) => {
                report_parse_error(path, &e);
                return 2;
            }
        }
    }
    let cfg = ServiceConfig {
        max_tenants: items.len().max(1),
        ..ServiceConfig::default()
    };
    let svc = Arc::new(ShardedService::with_pool_shards(cfg));
    let batch = paths.len() > 1;
    let mut all_ok = true;
    for (path, out) in paths.iter().zip(load_all(&svc, items)) {
        if batch {
            println!("== {path} ==");
        }
        match out {
            Ok(o) => {
                if o.cyclic_fallback {
                    eprintln!("(cyclic topology — falling back to the fixed-point analysis)");
                }
                print!("{}", o.report);
                if batch {
                    println!(
                        "{path}: {}",
                        if o.schedulable {
                            "admitted"
                        } else {
                            "REJECTED"
                        }
                    );
                }
                all_ok &= o.schedulable;
            }
            Err(e) => {
                eprintln!("{path}: analysis failed: {e}");
                all_ok = false;
            }
        }
    }
    i32::from(!all_ok)
}

/// Monte-Carlo deadline-failure probability per file: adaptive run to a
/// 0.01 CI half-width at 95%, verdict-only configuration. Exit 1 if any
/// job of any file was observed missing its deadline.
fn run_wcdfp(paths: &[String]) -> i32 {
    if paths.is_empty() {
        eprintln!("{USAGE}");
        return 2;
    }
    let stop = Stopping {
        tolerance: 0.01,
        confidence: 0.95,
        threshold: None,
    };
    let cfg = WcdfpConfig {
        sketches: false,
        ..WcdfpConfig::default()
    };
    const MAX_DRAWS: u64 = 100_000;
    let mut any_miss = false;
    for path in paths {
        let input = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rta-admit: cannot read {path}: {e}");
                return 2;
            }
        };
        let sys = match parse_system(&input) {
            Ok(sys) => sys,
            Err(e) => {
                report_parse_error(path, &e);
                return 2;
            }
        };
        let rep = estimate_adaptive(&DrawModel::Arrivals(sys), &cfg, &stop, MAX_DRAWS);
        println!(
            "{path}: {} draws{}",
            rep.draws,
            if rep.converged {
                ""
            } else {
                " (budget exhausted before convergence)"
            }
        );
        for (name, e) in rep.names.iter().zip(&rep.estimates) {
            println!(
                "  {name}: P(miss) ∈ [{:.4}, {:.4}] @ 95% (point {:.4}, misses {})",
                e.lo, e.hi, e.p, e.misses
            );
            any_miss |= e.misses > 0;
        }
    }
    i32::from(any_miss)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("--example") => {
            print!("{EXAMPLE}");
            0
        }
        Some("--wcdfp") => run_wcdfp(&args[1..]),
        Some("--serve") => {
            let svc = Arc::new(ShardedService::with_pool_shards(ServiceConfig::default()));
            let stdin = std::io::stdin().lock();
            let mut stdout = std::io::stdout().lock();
            match serve(&svc, stdin, &mut stdout) {
                Ok(()) => 0,
                Err(e) => {
                    eprintln!("rta-admit: serve failed: {e}");
                    2
                }
            }
        }
        Some("--serve-unix") => match args.get(1) {
            Some(path) => {
                let svc = Arc::new(ShardedService::with_pool_shards(ServiceConfig::default()));
                match serve_unix(svc, std::path::Path::new(path)) {
                    Ok(()) => 0,
                    Err(e) => {
                        eprintln!("rta-admit: cannot serve on {path}: {e}");
                        2
                    }
                }
            }
            None => {
                eprintln!("{USAGE}");
                2
            }
        },
        Some(flag) if flag.starts_with("--") => {
            eprintln!("rta-admit: unknown flag {flag}");
            eprintln!("{USAGE}");
            2
        }
        Some(_) => run_files(&args),
        None => {
            eprintln!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bursty_rta::analysis::AnalysisConfig;
    use bursty_rta::textfmt::analyze_cold;

    fn service_for(n: usize) -> Arc<ShardedService> {
        let cfg = ServiceConfig {
            max_tenants: n.max(1),
            ..ServiceConfig::default()
        };
        Arc::new(ShardedService::with_pool_shards(cfg))
    }

    #[test]
    fn one_shot_report_matches_cold_oracle() {
        // The one-shot path is a thin client of the warm service; its
        // report must be byte-identical to the historical cold analysis.
        let sys = parse_system(EXAMPLE).unwrap();
        let (cold_ok, cold_report) = analyze_cold(&sys, &AnalysisConfig::default()).unwrap();
        let svc = service_for(1);
        let out = svc.load_full("example", sys).unwrap();
        assert_eq!(out.schedulable, cold_ok);
        assert_eq!(out.report, cold_report);
    }

    #[test]
    fn batch_verdict_is_the_conjunction() {
        let light =
            parse_system("processor P1 spp\njob T1 deadline 50 periodic 20 0\nhop P1 5\n").unwrap();
        let example = parse_system(EXAMPLE).unwrap();
        let doomed =
            parse_system("processor P1 spp\njob T1 deadline 5 periodic 20 0\nhop P1 9\n").unwrap();
        let svc = service_for(3);
        let outs = load_all(
            &svc,
            vec![
                ("light".into(), light),
                ("example".into(), example),
                ("doomed".into(), doomed),
            ],
        );
        let verdicts: Vec<bool> = outs
            .iter()
            .map(|o| o.as_ref().unwrap().schedulable)
            .collect();
        assert_eq!(verdicts, vec![true, true, false]);
    }
}

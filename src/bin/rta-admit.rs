//! `rta-admit` — command-line admission analysis for distributed job-chain
//! systems.
//!
//! Reads a plain-text system description, assigns priorities (relative
//! deadline monotonic, Eq. 24 of the paper), picks the right analysis
//! (exact for all-SPP systems, Theorem 4 bounds otherwise, the Section 6
//! fixed point for cyclic topologies), and prints the per-job verdicts.
//!
//! ```text
//! Usage: rta-admit <file> [<file> …]   analyze system descriptions
//!        rta-admit --example           print an annotated example file
//! ```
//!
//! With several files the systems are analyzed as one batch over the
//! persistent worker pool ([`bursty_rta::analysis::BatchAnalyzer`]);
//! reports print in argument order and the exit status is 0 iff **every**
//! system is schedulable.
//!
//! File format (one directive per line, `#` comments):
//!
//! ```text
//! processor <name> <spp|spnp|fcfs>
//! job <name> deadline <ticks> periodic <period> <offset>
//! job <name> deadline <ticks> jitter <period> <jitter> <offset>
//! job <name> deadline <ticks> bursty <x-thousandths> <ticks-per-unit>
//! job <name> deadline <ticks> trace <t1> <t2> …
//! hop <processor> <exec-ticks>          # belongs to the preceding job
//! ```

use bursty_rta::analysis::fixpoint::analyze_with_loops;
use bursty_rta::analysis::{analyze_bounds, analyze_exact_spp, AnalysisConfig, AnalysisError};
use bursty_rta::curves::Time;
use bursty_rta::model::priority::{assign_priorities, PriorityPolicy};
use bursty_rta::model::{ArrivalPattern, ProcessorId, SchedulerKind, SystemBuilder, TaskSystem};

const EXAMPLE: &str = "\
# Two-stage pipeline with a cross-traffic job.
processor P1 spp
processor P2 fcfs

job video deadline 3000 periodic 2000 0
hop P1 500
hop P2 600

job alarms deadline 4000 bursty 600 1000
hop P2 400

job batch deadline 8000 trace 0 100 4000
hop P1 900
";

/// Parse the text format into a validated system.
/// A job mid-parse: name, deadline, arrival pattern, hops.
type JobSpec = (String, Time, ArrivalPattern, Vec<(ProcessorId, Time)>);

fn parse_system(input: &str) -> Result<TaskSystem, String> {
    let mut b = SystemBuilder::new();
    let mut procs: Vec<(String, ProcessorId)> = Vec::new();
    let mut pending: Option<JobSpec> = None;
    let mut jobs: Vec<JobSpec> = Vec::new();

    let lookup = |procs: &[(String, ProcessorId)], name: &str| -> Result<ProcessorId, String> {
        procs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| *id)
            .ok_or_else(|| format!("unknown processor '{name}'"))
    };
    let int = |tok: Option<&str>, what: &str| -> Result<i64, String> {
        tok.ok_or_else(|| format!("missing {what}"))?
            .parse::<i64>()
            .map_err(|e| format!("bad {what}: {e}"))
    };

    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let ctx = |msg: String| format!("line {}: {msg}", lineno + 1);
        match it.next().unwrap() {
            "processor" => {
                let name = it
                    .next()
                    .ok_or_else(|| ctx("missing processor name".into()))?;
                let kind = match it.next() {
                    Some("spp") => SchedulerKind::Spp,
                    Some("spnp") => SchedulerKind::Spnp,
                    Some("fcfs") => SchedulerKind::Fcfs,
                    Some("iwrr") => SchedulerKind::Iwrr,
                    other => return Err(ctx(format!("bad scheduler {other:?}"))),
                };
                let id = b.add_processor(name, kind);
                procs.push((name.to_string(), id));
            }
            "job" => {
                if let Some(j) = pending.take() {
                    jobs.push(j);
                }
                let name = it
                    .next()
                    .ok_or_else(|| ctx("missing job name".into()))?
                    .to_string();
                match it.next() {
                    Some("deadline") => {}
                    other => return Err(ctx(format!("expected 'deadline', got {other:?}"))),
                }
                let deadline = Time(int(it.next(), "deadline").map_err(&ctx)?);
                let pattern = match it.next() {
                    Some("periodic") => ArrivalPattern::Periodic {
                        period: Time(int(it.next(), "period").map_err(&ctx)?),
                        offset: Time(int(it.next(), "offset").map_err(&ctx)?),
                    },
                    Some("jitter") => ArrivalPattern::PeriodicJitter {
                        period: Time(int(it.next(), "period").map_err(&ctx)?),
                        jitter: Time(int(it.next(), "jitter").map_err(&ctx)?),
                        offset: Time(int(it.next(), "offset").map_err(&ctx)?),
                    },
                    Some("bursty") => {
                        let x_thousandths = int(it.next(), "x-thousandths").map_err(&ctx)?;
                        if !(1..1000).contains(&x_thousandths) {
                            return Err(ctx("bursty x must be in 1..999 (thousandths)".into()));
                        }
                        ArrivalPattern::Hyperbolic {
                            x: x_thousandths as f64 / 1000.0,
                            ticks_per_unit: int(it.next(), "ticks-per-unit").map_err(&ctx)?,
                        }
                    }
                    Some("trace") => {
                        let mut ts = Vec::new();
                        for tok in it.by_ref() {
                            ts.push(Time(
                                tok.parse::<i64>()
                                    .map_err(|e| ctx(format!("bad trace time: {e}")))?,
                            ));
                        }
                        ts.sort();
                        ArrivalPattern::Trace(ts)
                    }
                    other => return Err(ctx(format!("bad arrival kind {other:?}"))),
                };
                pending = Some((name, deadline, pattern, Vec::new()));
            }
            "hop" => {
                let Some(job) = pending.as_mut() else {
                    return Err(ctx("'hop' before any 'job'".into()));
                };
                let pname = it
                    .next()
                    .ok_or_else(|| ctx("missing hop processor".into()))?;
                let p = lookup(&procs, pname).map_err(&ctx)?;
                let exec = Time(int(it.next(), "hop exec").map_err(&ctx)?);
                job.3.push((p, exec));
            }
            other => return Err(ctx(format!("unknown directive '{other}'"))),
        }
    }
    if let Some(j) = pending.take() {
        jobs.push(j);
    }
    for (name, deadline, pattern, hops) in jobs {
        b.add_job(name, deadline, pattern, hops);
    }
    let mut sys = b.build().map_err(|e| e.to_string())?;
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic)
        .map_err(|e| e.to_string())?;
    Ok(sys)
}

/// Run the right analysis for `sys`: exact for all-SPP, Theorem 4 bounds
/// otherwise, falling back to the Section 6 fixed point on cyclic
/// topologies. Returns the verdict and the rendered report.
fn analyze_system(sys: &TaskSystem) -> Result<(bool, String), String> {
    let cfg = AnalysisConfig::default();
    let all_spp = sys
        .processors()
        .iter()
        .all(|p| p.scheduler == SchedulerKind::Spp);
    let first = if all_spp {
        analyze_exact_spp(sys, &cfg).map(|r| (r.all_schedulable(), r.to_string()))
    } else {
        analyze_bounds(sys, &cfg).map(|r| (r.all_schedulable(), r.to_string()))
    };
    match first {
        Ok(out) => return Ok(out),
        Err(AnalysisError::CyclicDependency { .. }) => {
            eprintln!("(cyclic topology — falling back to the fixed-point analysis)");
        }
        Err(e) => return Err(e.to_string()),
    }
    analyze_with_loops(sys, &cfg, 8)
        .map(|r| (r.all_schedulable(), r.to_string()))
        .map_err(|e| e.to_string())
}

fn analyze_and_print(sys: &TaskSystem) -> bool {
    match analyze_system(sys) {
        Ok((ok, report)) => {
            print!("{report}");
            ok
        }
        Err(e) => {
            eprintln!("analysis failed: {e}");
            false
        }
    }
}

/// Analyze all systems as one batch over the worker pool and print the
/// reports in argument order. Returns `true` iff every system is
/// schedulable and no analysis failed.
fn analyze_batch(names: &[String], systems: Vec<TaskSystem>) -> bool {
    use bursty_rta::analysis::BatchAnalyzer;
    let systems = std::sync::Arc::new(systems);
    let scenarios = std::sync::Arc::clone(&systems);
    let results = BatchAnalyzer::new(AnalysisConfig::default()).run(
        systems.len(),
        |_| (),
        move |(), i| analyze_system(&scenarios[i]),
    );
    let mut all_ok = true;
    for (name, result) in names.iter().zip(results) {
        println!("== {name} ==");
        match result {
            Ok((ok, report)) => {
                print!("{report}");
                println!("{name}: {}", if ok { "admitted" } else { "REJECTED" });
                all_ok &= ok;
            }
            Err(e) => {
                eprintln!("{name}: analysis failed: {e}");
                all_ok = false;
            }
        }
    }
    all_ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--example") => print!("{EXAMPLE}"),
        Some(_) => {
            let mut systems = Vec::with_capacity(args.len());
            for path in &args {
                let input = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(2);
                });
                let sys = parse_system(&input).unwrap_or_else(|e| {
                    eprintln!("{path}: parse error: {e}");
                    std::process::exit(2);
                });
                systems.push(sys);
            }
            let ok = if systems.len() == 1 {
                analyze_and_print(&systems[0])
            } else {
                analyze_batch(&args, systems)
            };
            std::process::exit(if ok { 0 } else { 1 });
        }
        None => {
            eprintln!("usage: rta-admit <file> [<file> …] | rta-admit --example");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_parses_and_analyzes() {
        let sys = parse_system(EXAMPLE).unwrap();
        assert_eq!(sys.processors().len(), 2);
        assert_eq!(sys.jobs().len(), 3);
        assert_eq!(sys.jobs()[0].subjobs.len(), 2);
        // Heterogeneous: the bounds path runs.
        let _ = analyze_and_print(&sys);
    }

    #[test]
    fn parse_errors_are_located() {
        let err = parse_system("processor P1 spp\njob T1 deadline x periodic 5 0").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse_system("hop P1 5").unwrap_err();
        assert!(err.contains("before any 'job'"), "{err}");
        let err = parse_system("processor P1 meow").unwrap_err();
        assert!(err.contains("bad scheduler"), "{err}");
        let err = parse_system("processor P1 spp\njob T1 deadline 10 periodic 5 0\nhop P9 2")
            .unwrap_err();
        assert!(err.contains("unknown processor"), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let sys = parse_system(
            "# header\nprocessor P1 spp\n\njob T1 deadline 50 periodic 20 0 # inline\nhop P1 5\n",
        )
        .unwrap();
        assert_eq!(sys.jobs().len(), 1);
    }

    #[test]
    fn batch_mode_reports_every_file() {
        // One admissible system, the heterogeneous example, and one
        // hopeless system: the batch verdict must be the conjunction.
        let light =
            parse_system("processor P1 spp\njob T1 deadline 50 periodic 20 0\nhop P1 5\n").unwrap();
        let example = parse_system(EXAMPLE).unwrap();
        let doomed =
            parse_system("processor P1 spp\njob T1 deadline 5 periodic 20 0\nhop P1 9\n").unwrap();
        let names: Vec<String> = ["light", "example", "doomed"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(!analyze_batch(&names, vec![light.clone(), example, doomed]));
        assert!(analyze_batch(&names[..1], vec![light]));
    }

    #[test]
    fn trace_jobs_sorted_and_analyzable() {
        let sys =
            parse_system("processor P1 spp\njob T1 deadline 50 trace 9 1 4\nhop P1 5\n").unwrap();
        match &sys.jobs()[0].arrival {
            ArrivalPattern::Trace(ts) => {
                assert_eq!(ts, &vec![Time(1), Time(4), Time(9)]);
            }
            other => panic!("expected trace, got {other:?}"),
        }
        let r = analyze_exact_spp(&sys, &AnalysisConfig::default()).unwrap();
        assert!(r.all_schedulable());
    }
}

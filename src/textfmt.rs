//! The plain-text system-description format shared by the `rta-admit`
//! one-shot CLI, the daemon's `LOAD` payloads, and the `ADMIT` wire
//! grammar.
//!
//! One directive per line, `#` starts a comment:
//!
//! ```text
//! processor <name> <spp|spnp|fcfs|iwrr>
//! job <name> deadline <ticks> <arrival>
//! hop <processor> <exec-ticks> [prio <p>] [weight <w>]
//! ```
//!
//! Arrival forms:
//!
//! ```text
//! periodic <period> <offset>
//! jitter <period> <jitter> <offset>
//! bursty <x-thousandths> <ticks-per-unit>      # Eq. 27 hyperbolic stream
//! burst <len> <intra-gap> <train-period> <offset>
//! sporadic <min-gap>
//! trace <t1> <t2> …
//! ```
//!
//! `hop` lines belong to the preceding `job`; a job line may also carry its
//! hops inline (the `ADMIT` protocol form). Priorities are assigned by the
//! relative-deadline-monotonic rule (Eq. 24 of the paper) unless any hop
//! carries an explicit `prio`, in which case the file's priorities are
//! taken as given.
//!
//! Parse failures are located: [`ParseError`] carries the 1-based line
//! number and the offending line text, so callers can render
//! `path:line: message` diagnostics instead of a bare error.

use std::collections::HashMap;
use std::iter::Peekable;
use std::str::SplitWhitespace;

use rta_core::fixpoint::analyze_with_loops;
use rta_core::{analyze_bounds, analyze_exact_spp, AnalysisConfig, AnalysisError};
use rta_curves::Time;
use rta_model::priority::{assign_priorities, PriorityPolicy};
use rta_model::{
    ArrivalPattern, Job, ProcessorId, SchedulerKind, Subjob, SystemBuilder, TaskSystem,
};

/// An annotated example file (printed by `rta-admit --example`).
pub const EXAMPLE: &str = "\
# Two-stage pipeline with cross traffic and a bursty telemetry train.
processor P1 spp
processor P2 fcfs

job video deadline 3000 periodic 2000 0
hop P1 500
hop P2 600

job alarms deadline 4000 bursty 600 1000
hop P2 400

job telemetry deadline 6000 burst 3 50 3000 0
hop P2 100

job batch deadline 8000 trace 0 100 4000
hop P1 900
";

/// A located parse failure: 1-based line number (0 when the failure is not
/// tied to one line), the offending line's text, and the message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number, or 0 for whole-input failures.
    pub line: usize,
    /// The offending line, comment-stripped and trimmed (empty when
    /// `line == 0`).
    pub text: String,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "line {}: {}\n    | {}", self.line, self.msg, self.text)
        }
    }
}

impl std::error::Error for ParseError {}

/// One hop of a job spec before processor-name resolution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HopSpec {
    /// Processor name (resolved against the target system).
    pub processor: String,
    /// Execution demand in ticks.
    pub exec: i64,
    /// Explicit priority, if any (`prio <p>`).
    pub priority: Option<u32>,
    /// Explicit round-robin weight, if any (`weight <w>`).
    pub weight: Option<u32>,
}

/// A job spec before processor-name resolution: the `job …` grammar shared
/// by description files and `ADMIT` protocol lines.
#[derive(Clone, Debug, PartialEq)]
pub struct JobDraft {
    /// Job name (the protocol's stable handle for removal).
    pub name: String,
    /// End-to-end deadline in ticks.
    pub deadline: i64,
    /// Arrival pattern of the first hop.
    pub arrival: ArrivalPattern,
    /// The chain, in hop order.
    pub hops: Vec<HopSpec>,
}

type Tokens<'a> = Peekable<SplitWhitespace<'a>>;

fn int(tok: Option<&str>, what: &str) -> Result<i64, String> {
    tok.ok_or_else(|| format!("missing {what}"))?
        .parse::<i64>()
        .map_err(|e| format!("bad {what}: {e}"))
}

fn uint(tok: Option<&str>, what: &str) -> Result<u32, String> {
    tok.ok_or_else(|| format!("missing {what}"))?
        .parse::<u32>()
        .map_err(|e| format!("bad {what}: {e}"))
}

/// Parse an arrival pattern from its leading keyword onward.
pub fn parse_arrival(it: &mut Tokens) -> Result<ArrivalPattern, String> {
    match it.next() {
        Some("periodic") => Ok(ArrivalPattern::Periodic {
            period: Time(int(it.next(), "period")?),
            offset: Time(int(it.next(), "offset")?),
        }),
        Some("jitter") => Ok(ArrivalPattern::PeriodicJitter {
            period: Time(int(it.next(), "period")?),
            jitter: Time(int(it.next(), "jitter")?),
            offset: Time(int(it.next(), "offset")?),
        }),
        Some("bursty") => {
            let x_thousandths = int(it.next(), "x-thousandths")?;
            if !(1..1000).contains(&x_thousandths) {
                return Err("bursty x must be in 1..999 (thousandths)".into());
            }
            Ok(ArrivalPattern::Hyperbolic {
                x: x_thousandths as f64 / 1000.0,
                ticks_per_unit: int(it.next(), "ticks-per-unit")?,
            })
        }
        Some("burst") => Ok(ArrivalPattern::BurstTrain {
            burst_len: uint(it.next(), "burst length")?,
            intra_gap: Time(int(it.next(), "intra-gap")?),
            train_period: Time(int(it.next(), "train period")?),
            offset: Time(int(it.next(), "offset")?),
        }),
        Some("sporadic") => Ok(ArrivalPattern::SporadicEnvelope {
            min_gap: Time(int(it.next(), "min-gap")?),
        }),
        Some("trace") => {
            let mut ts = Vec::new();
            // Consume numeric tokens only, so inline `hop …` suffixes
            // (the ADMIT grammar) can follow a trace.
            while let Some(&tok) = it.peek() {
                if tok == "hop" {
                    break;
                }
                match tok.parse::<i64>() {
                    Ok(t) => {
                        ts.push(Time(t));
                        it.next();
                    }
                    Err(e) => return Err(format!("bad trace time: {e}")),
                }
            }
            if ts.is_empty() {
                return Err("trace needs at least one release time".into());
            }
            ts.sort();
            Ok(ArrivalPattern::Trace(ts))
        }
        other => Err(format!("bad arrival kind {other:?}")),
    }
}

/// Render an arrival pattern in the grammar [`parse_arrival`] accepts.
/// Hyperbolic rates are quantized to thousandths (the wire lattice).
pub fn format_arrival(p: &ArrivalPattern) -> String {
    match p {
        ArrivalPattern::Periodic { period, offset } => {
            format!("periodic {} {}", period.ticks(), offset.ticks())
        }
        ArrivalPattern::PeriodicJitter {
            period,
            jitter,
            offset,
        } => format!(
            "jitter {} {} {}",
            period.ticks(),
            jitter.ticks(),
            offset.ticks()
        ),
        ArrivalPattern::Hyperbolic { x, ticks_per_unit } => {
            format!("bursty {} {ticks_per_unit}", (x * 1000.0).round() as i64)
        }
        ArrivalPattern::BurstTrain {
            burst_len,
            intra_gap,
            train_period,
            offset,
        } => format!(
            "burst {burst_len} {} {} {}",
            intra_gap.ticks(),
            train_period.ticks(),
            offset.ticks()
        ),
        ArrivalPattern::SporadicEnvelope { min_gap } => {
            format!("sporadic {}", min_gap.ticks())
        }
        ArrivalPattern::Trace(ts) => {
            let mut out = String::from("trace");
            for t in ts {
                out.push_str(&format!(" {}", t.ticks()));
            }
            out
        }
    }
}

/// Parse one `hop <processor> <exec> [prio <p>] [weight <w>]` clause, with
/// the leading `hop` keyword already consumed.
fn parse_hop(it: &mut Tokens) -> Result<HopSpec, String> {
    let processor = it.next().ok_or("missing hop processor")?.to_string();
    let exec = int(it.next(), "hop exec")?;
    let mut hop = HopSpec {
        processor,
        exec,
        priority: None,
        weight: None,
    };
    while let Some(&tok) = it.peek() {
        match tok {
            "prio" => {
                it.next();
                hop.priority = Some(uint(it.next(), "prio")?);
            }
            "weight" => {
                it.next();
                hop.weight = Some(uint(it.next(), "weight")?);
            }
            _ => break,
        }
    }
    Ok(hop)
}

/// Parse a job spec from the token after the `job` keyword: name, deadline,
/// arrival, and any *inline* hops (`ADMIT` form; description files usually
/// put hops on their own lines).
pub fn parse_job_draft(it: &mut Tokens) -> Result<JobDraft, String> {
    let name = it.next().ok_or("missing job name")?.to_string();
    match it.next() {
        Some("deadline") => {}
        other => return Err(format!("expected 'deadline', got {other:?}")),
    }
    let deadline = int(it.next(), "deadline")?;
    let arrival = parse_arrival(it)?;
    let mut hops = Vec::new();
    loop {
        match it.next() {
            None => break,
            Some("hop") => hops.push(parse_hop(it)?),
            Some(other) => return Err(format!("unexpected token '{other}' after arrival")),
        }
    }
    Ok(JobDraft {
        name,
        deadline,
        arrival,
        hops,
    })
}

/// Render a job spec in the grammar [`parse_job_draft`] accepts (without
/// the leading `job` keyword).
pub fn format_job_draft(j: &JobDraft) -> String {
    let mut out = format!(
        "{} deadline {} {}",
        j.name,
        j.deadline,
        format_arrival(&j.arrival)
    );
    for h in &j.hops {
        out.push_str(&format!(" hop {} {}", h.processor, h.exec));
        if let Some(p) = h.priority {
            out.push_str(&format!(" prio {p}"));
        }
        if let Some(w) = h.weight {
            out.push_str(&format!(" weight {w}"));
        }
    }
    out
}

/// Resolve a [`JobDraft`] against a concrete system: map processor names to
/// ids and fill unspecified priorities with the **lowest** slot on each
/// processor (admission must not reshuffle jobs that are already running).
pub fn resolve_job(sys: &TaskSystem, draft: &JobDraft) -> Result<Job, String> {
    if draft.hops.is_empty() {
        return Err(format!("job '{}' has no hops", draft.name));
    }
    let mut next_prio: HashMap<ProcessorId, u32> = HashMap::new();
    let mut subjobs = Vec::with_capacity(draft.hops.len());
    for hop in &draft.hops {
        let pid = sys
            .processors()
            .iter()
            .position(|p| p.name == hop.processor)
            .map(ProcessorId)
            .ok_or_else(|| format!("unknown processor '{}'", hop.processor))?;
        let kind = sys.processor(pid).scheduler;
        let priority = match hop.priority {
            Some(p) => Some(p),
            None if kind.uses_priorities() => {
                let next = next_prio.entry(pid).or_insert_with(|| {
                    sys.subjobs_on(pid)
                        .into_iter()
                        .filter_map(|r| sys.subjob(r).priority)
                        .max()
                        .unwrap_or(0)
                });
                *next += 1;
                Some(*next)
            }
            None => None,
        };
        subjobs.push(Subjob {
            processor: pid,
            exec: Time(hop.exec),
            priority,
            weight: hop.weight,
        });
    }
    Ok(Job {
        name: draft.name.clone(),
        deadline: Time(draft.deadline),
        arrival: draft.arrival.clone(),
        subjobs,
    })
}

/// Parse a full system description into a validated [`TaskSystem`].
pub fn parse_system(input: &str) -> Result<TaskSystem, ParseError> {
    let mut b = SystemBuilder::new();
    let mut procs: Vec<(String, ProcessorId)> = Vec::new();
    let mut pending: Option<JobDraft> = None;
    let mut drafts: Vec<JobDraft> = Vec::new();

    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let located = |msg: String| ParseError {
            line: lineno + 1,
            text: line.to_string(),
            msg,
        };
        let mut it = line.split_whitespace().peekable();
        match it.next().unwrap() {
            "processor" => {
                let name = it
                    .next()
                    .ok_or_else(|| located("missing processor name".into()))?;
                let kind = match it.next() {
                    Some("spp") => SchedulerKind::Spp,
                    Some("spnp") => SchedulerKind::Spnp,
                    Some("fcfs") => SchedulerKind::Fcfs,
                    Some("iwrr") => SchedulerKind::Iwrr,
                    other => return Err(located(format!("bad scheduler {other:?}"))),
                };
                if procs.iter().any(|(n, _)| n == name) {
                    return Err(located(format!("duplicate processor '{name}'")));
                }
                let id = b.add_processor(name, kind);
                procs.push((name.to_string(), id));
            }
            "job" => {
                if let Some(j) = pending.take() {
                    drafts.push(j);
                }
                pending = Some(parse_job_draft(&mut it).map_err(located)?);
            }
            "hop" => {
                let Some(job) = pending.as_mut() else {
                    return Err(located("'hop' before any 'job'".into()));
                };
                job.hops.push(parse_hop(&mut it).map_err(located)?);
            }
            other => return Err(located(format!("unknown directive '{other}'"))),
        }
    }
    if let Some(j) = pending.take() {
        drafts.push(j);
    }

    let whole = |msg: String| ParseError {
        line: 0,
        text: String::new(),
        msg,
    };
    let explicit_prios = drafts
        .iter()
        .any(|d| d.hops.iter().any(|h| h.priority.is_some()));
    let mut refs = Vec::new();
    for draft in &drafts {
        let mut hops = Vec::with_capacity(draft.hops.len());
        let mut extras = Vec::new();
        for (hi, hop) in draft.hops.iter().enumerate() {
            let pid = procs
                .iter()
                .find(|(n, _)| *n == hop.processor)
                .map(|&(_, id)| id)
                .ok_or_else(|| {
                    whole(format!(
                        "job '{}': unknown processor '{}'",
                        draft.name, hop.processor
                    ))
                })?;
            hops.push((pid, Time(hop.exec)));
            extras.push((hi, hop.priority, hop.weight));
        }
        let id = b.add_job(
            draft.name.clone(),
            Time(draft.deadline),
            draft.arrival.clone(),
            hops,
        );
        refs.push((id, extras));
    }
    for (id, extras) in refs {
        for (hi, prio, weight) in extras {
            let r = rta_model::SubjobRef { job: id, index: hi };
            if let Some(p) = prio {
                b.set_priority(r, p);
            }
            if let Some(w) = weight {
                b.set_weight(r, w);
            }
        }
    }
    let mut sys = b.build().map_err(|e| whole(e.to_string()))?;
    if explicit_prios {
        sys.validate(true).map_err(|e| whole(e.to_string()))?;
    } else {
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic)
            .map_err(|e| whole(e.to_string()))?;
    }
    Ok(sys)
}

/// Run the right **cold** analysis for `sys`: exact for all-SPP, Theorem 4
/// bounds otherwise, falling back to the Section 6 fixed point on cyclic
/// topologies. Returns the verdict and the rendered report.
///
/// This is the one-shot path the CLI historically used; it is retained as
/// the oracle for the warm verdicts served by
/// [`rta_core::service::AdmissionService`].
pub fn analyze_cold(sys: &TaskSystem, cfg: &AnalysisConfig) -> Result<(bool, String), String> {
    let all_spp = sys
        .processors()
        .iter()
        .all(|p| p.scheduler == SchedulerKind::Spp);
    let first = if all_spp {
        analyze_exact_spp(sys, cfg).map(|r| (r.all_schedulable(), r.to_string()))
    } else {
        analyze_bounds(sys, cfg).map(|r| (r.all_schedulable(), r.to_string()))
    };
    match first {
        Ok(out) => return Ok(out),
        Err(AnalysisError::CyclicDependency { .. }) => {}
        Err(e) => return Err(e.to_string()),
    }
    analyze_with_loops(sys, cfg, 8)
        .map(|r| (r.all_schedulable(), r.to_string()))
        .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_parses() {
        let sys = parse_system(EXAMPLE).unwrap();
        assert_eq!(sys.processors().len(), 2);
        assert_eq!(sys.jobs().len(), 4);
        assert_eq!(sys.jobs()[0].subjobs.len(), 2);
        assert!(matches!(
            sys.jobs()[2].arrival,
            ArrivalPattern::BurstTrain { burst_len: 3, .. }
        ));
    }

    #[test]
    fn parse_errors_carry_line_and_text() {
        let err = parse_system("processor P1 spp\njob T1 deadline x periodic 5 0").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.text, "job T1 deadline x periodic 5 0");
        assert!(err.msg.contains("bad deadline"), "{err}");
        let shown = err.to_string();
        assert!(
            shown.contains("line 2") && shown.contains("| job T1"),
            "{shown}"
        );

        let err = parse_system("hop P1 5").unwrap_err();
        assert!(err.msg.contains("before any 'job'"), "{err}");
        let err = parse_system("processor P1 meow").unwrap_err();
        assert!(err.msg.contains("bad scheduler"), "{err}");
        let err = parse_system("processor P1 spp\njob T1 deadline 10 periodic 5 0\nhop P9 2")
            .unwrap_err();
        assert_eq!(err.line, 0, "resolution errors are whole-input");
        assert!(err.msg.contains("unknown processor"), "{err}");
    }

    #[test]
    fn explicit_priorities_and_weights_are_honored() {
        let sys = parse_system(
            "processor P1 spp\n\
             job A deadline 50 periodic 20 0\nhop P1 5 prio 2\n\
             job B deadline 90 periodic 30 0\nhop P1 4 prio 1\n",
        )
        .unwrap();
        // Explicit: B higher priority despite the longer deadline.
        assert_eq!(sys.jobs()[0].subjobs[0].priority, Some(2));
        assert_eq!(sys.jobs()[1].subjobs[0].priority, Some(1));

        let sys =
            parse_system("processor P1 iwrr\njob A deadline 50 periodic 20 0\nhop P1 5 weight 3\n")
                .unwrap();
        assert_eq!(sys.jobs()[0].subjobs[0].weight, Some(3));
    }

    #[test]
    fn job_draft_round_trips_through_its_grammar() {
        let text = "T9 deadline 500 burst 4 10 800 0 hop P1 30 prio 7 hop P2 12 weight 2";
        let mut it = text.split_whitespace().peekable();
        let draft = parse_job_draft(&mut it).unwrap();
        assert_eq!(format_job_draft(&draft), text);
        let rendered = format_job_draft(&draft);
        let mut it2 = rendered.split_whitespace().peekable();
        assert_eq!(parse_job_draft(&mut it2).unwrap(), draft);
    }

    #[test]
    fn resolve_job_fills_lowest_priority_slots() {
        let sys = parse_system(
            "processor P1 spp\nprocessor P2 spp\n\
             job A deadline 50 periodic 20 0\nhop P1 5\nhop P2 5\n",
        )
        .unwrap();
        let mut it = "X deadline 100 periodic 50 0 hop P1 3 hop P2 2"
            .split_whitespace()
            .peekable();
        let draft = parse_job_draft(&mut it).unwrap();
        let job = resolve_job(&sys, &draft).unwrap();
        let base_p1 = sys.jobs()[0].subjobs[0].priority.unwrap();
        let base_p2 = sys.jobs()[0].subjobs[1].priority.unwrap();
        assert_eq!(job.subjobs[0].priority, Some(base_p1 + 1));
        assert_eq!(job.subjobs[1].priority, Some(base_p2 + 1));
        assert!(resolve_job(
            &sys,
            &JobDraft {
                hops: vec![],
                ..draft
            }
        )
        .is_err());
    }

    #[test]
    fn trace_jobs_sorted_and_cold_analyzable() {
        let sys =
            parse_system("processor P1 spp\njob T1 deadline 50 trace 9 1 4\nhop P1 5\n").unwrap();
        match &sys.jobs()[0].arrival {
            ArrivalPattern::Trace(ts) => assert_eq!(ts, &vec![Time(1), Time(4), Time(9)]),
            other => panic!("expected trace, got {other:?}"),
        }
        let (ok, report) = analyze_cold(&sys, &AnalysisConfig::default()).unwrap();
        assert!(ok, "{report}");
    }
}

//! The resident admission daemon: tenant sharding over the analysis worker
//! pool plus the serve loops (stdin/stdout and unix socket).
//!
//! A [`ShardedService`] splits the tenant key space across `S` independent
//! [`AdmissionService`] shards by FNV-1a hash, one mutex per shard. All
//! requests for one tenant land on one shard — they serialize, which the
//! warm-session model requires — while requests for distinct tenants
//! proceed concurrently. Batches (requests between blank-line flushes on a
//! stream, or an explicit [`ShardedService::apply_batch`] call) are grouped
//! by shard and fanned across the same `pool_map` worker pool the analyses
//! use; responses always come back in request order.
//!
//! The serve loop never dies on bad input: any unparsable line or failed
//! request becomes an `ERR` response in-order, and the tenant sessions
//! stay intact ([`rta_core::service::AdmissionService`] rolls back rejected
//! or failed deltas).

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::{Arc, Mutex};

use rta_core::par::{pool_map, pool_threads};
use rta_core::service::{AdmissionService, LoadOutcome, ServiceConfig, ServiceError};
use rta_core::wcdfp::Stopping;
use rta_sim::wcdfp::{estimate_adaptive, estimate_fixed, DrawModel, WcdfpConfig};

use crate::proto::{Request, Response, WcdfpJobLine, WcdfpSpec};
use crate::textfmt::{parse_system, resolve_job, ParseError};

/// A fixed set of [`AdmissionService`] shards with stable tenant routing.
pub struct ShardedService {
    shards: Vec<Mutex<AdmissionService>>,
}

/// Render a [`ParseError`] on one line (protocol responses are line-oriented;
/// the CLI uses the multi-line `Display` form instead).
fn parse_err_line(e: &ParseError) -> String {
    if e.line == 0 {
        e.msg.clone()
    } else {
        format!("line {}: {} | {}", e.line, e.msg, e.text)
    }
}

impl ShardedService {
    /// Create a service with `shards` independent shards (≥ 1 enforced),
    /// each with its own tenant cap as given by `cfg`.
    pub fn new(cfg: ServiceConfig, shards: usize) -> ShardedService {
        let shards = shards.max(1);
        ShardedService {
            shards: (0..shards)
                .map(|_| Mutex::new(AdmissionService::new(cfg.clone())))
                .collect(),
        }
    }

    /// Create a service with one shard per worker-pool participant.
    pub fn with_pool_shards(cfg: ServiceConfig) -> ShardedService {
        ShardedService::new(cfg, pool_threads())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Stable shard index of a tenant key (FNV-1a over the key bytes).
    pub fn shard_of(&self, tenant: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tenant.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Tenants resident across all shards.
    pub fn tenant_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().tenant_count())
            .sum()
    }

    /// Load (or replace) a tenant and return the full outcome, including
    /// the rendered report the wire protocol elides. This is the one-shot
    /// CLI's code path, so batch mode and the daemon share one
    /// parse→verdict→report pipeline.
    pub fn load_full(
        &self,
        tenant: &str,
        sys: rta_model::TaskSystem,
    ) -> Result<LoadOutcome, ServiceError> {
        self.shards[self.shard_of(tenant)]
            .lock()
            .unwrap()
            .load(tenant, sys)
    }

    /// Apply one request against its tenant's shard.
    pub fn apply(&self, req: &Request) -> Response {
        let Some(tenant) = req.tenant() else {
            return Response::Pong;
        };
        let shard = &self.shards[self.shard_of(tenant)];
        let mut svc = shard.lock().unwrap();
        match self.dispatch(&mut svc, req) {
            Ok(resp) => resp,
            Err(message) => Response::Err { message },
        }
    }

    fn dispatch(&self, svc: &mut AdmissionService, req: &Request) -> Result<Response, String> {
        let fail = |e: ServiceError| e.to_string();
        match req {
            Request::Ping => Ok(Response::Pong),
            Request::Load { tenant, system } => {
                let sys = parse_system(system).map_err(|e| parse_err_line(&e))?;
                let out = svc.load(tenant, sys).map_err(fail)?;
                Ok(Response::Loaded {
                    tenant: tenant.clone(),
                    generation: out.generation,
                    jobs: out.jobs,
                    schedulable: out.schedulable,
                    evicted: out.evicted,
                })
            }
            Request::Admit { tenant, job } => {
                let sys = svc
                    .tenant_system(tenant)
                    .ok_or_else(|| format!("unknown tenant '{tenant}'"))?;
                let resolved = resolve_job(sys, job)?;
                let out = svc.admit(tenant, resolved).map_err(fail)?;
                Ok(Response::Admitted {
                    tenant: tenant.clone(),
                    generation: out.generation,
                    job: job.name.clone(),
                    admitted: out.verdict.admitted(),
                    jobs: out.jobs,
                })
            }
            Request::Remove { tenant, job } => {
                let out = svc.remove(tenant, job).map_err(fail)?;
                Ok(Response::Removed {
                    tenant: tenant.clone(),
                    generation: out.generation,
                    job: job.clone(),
                    jobs: out.jobs,
                })
            }
            Request::Scale { tenant, factor } => {
                let out = svc.scale(tenant, *factor).map_err(fail)?;
                Ok(Response::Scaled {
                    tenant: tenant.clone(),
                    generation: out.generation,
                    factor: *factor,
                    schedulable: out.schedulable.unwrap_or(false),
                })
            }
            Request::Region {
                tenant,
                scale_lo,
                scale_hi,
                scale_steps,
                burst_lo,
                burst_hi,
                burst_steps,
            } => {
                let report = svc
                    .region(
                        tenant,
                        (*scale_lo, *scale_hi, *scale_steps),
                        (*burst_lo, *burst_hi, *burst_steps),
                    )
                    .map_err(fail)?;
                Ok(Response::RegionMap {
                    tenant: tenant.clone(),
                    scales: report.scales.clone(),
                    rows: report
                        .rows
                        .iter()
                        .map(|r| (r.burst_len, r.frontier))
                        .collect(),
                })
            }
            Request::Stats { tenant } => {
                let stats = svc.stats(tenant).map_err(fail)?;
                Ok(Response::Stats {
                    tenant: tenant.clone(),
                    generation: stats.generation,
                    jobs: stats.jobs,
                    analyses: stats.session.analyses,
                    recomputed: stats.session.subjobs_recomputed,
                    reused: stats.session.subjobs_reused,
                    verdict_hits: stats.session.verdict_hits,
                    verdict_misses: stats.session.verdict_misses,
                    warm_starts: stats.session.warm_starts,
                    interned: stats.interned_curves,
                    tenants: svc.tenant_count(),
                })
            }
            Request::Wcdfp { tenant, spec } => {
                let sys = svc
                    .tenant_system(tenant)
                    .ok_or_else(|| format!("unknown tenant '{tenant}'"))?;
                // The verdict-only configuration: the admission path wants
                // miss probabilities and intervals, not response sketches.
                let model = DrawModel::Arrivals(sys.clone());
                let base = |seed: u64| WcdfpConfig {
                    base_seed: seed,
                    sketches: false,
                    ..WcdfpConfig::default()
                };
                let rep = match *spec {
                    WcdfpSpec::Fixed { draws, seed } => {
                        if draws == 0 {
                            return Err("WCDFP needs at least one draw".into());
                        }
                        estimate_fixed(&model, &base(seed), draws)
                    }
                    WcdfpSpec::Adaptive {
                        tolerance,
                        max_draws,
                        seed,
                    } => {
                        if !tolerance.is_finite() || tolerance <= 0.0 {
                            return Err("WCDFP tolerance must be positive".into());
                        }
                        if max_draws == 0 {
                            return Err("WCDFP needs at least one draw".into());
                        }
                        let stop = Stopping {
                            tolerance,
                            confidence: 0.95,
                            threshold: None,
                        };
                        estimate_adaptive(&model, &base(seed), &stop, max_draws)
                    }
                };
                Ok(Response::Wcdfp {
                    tenant: tenant.clone(),
                    draws: rep.draws,
                    converged: rep.converged,
                    jobs: rep
                        .names
                        .iter()
                        .zip(&rep.estimates)
                        .map(|(name, e)| WcdfpJobLine {
                            name: name.clone(),
                            p: e.p,
                            lo: e.lo,
                            hi: e.hi,
                        })
                        .collect(),
                })
            }
            Request::Evict { tenant } => Ok(Response::Evicted {
                tenant: tenant.clone(),
                existed: svc.evict(tenant),
            }),
        }
    }

    /// Apply a batch, fanning shard groups across the worker pool. Requests
    /// for one tenant keep their relative order (they live in one shard
    /// group, applied sequentially); the response vector is in request
    /// order.
    pub fn apply_batch(self: &Arc<Self>, reqs: Vec<Request>) -> Vec<Response> {
        let n = reqs.len();
        if n <= 1 || self.shards.len() == 1 {
            return reqs.iter().map(|r| self.apply(r)).collect();
        }
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, r) in reqs.iter().enumerate() {
            groups[r.tenant().map_or(0, |t| self.shard_of(t))].push(i);
        }
        let groups: Arc<Vec<Vec<usize>>> =
            Arc::new(groups.into_iter().filter(|g| !g.is_empty()).collect());
        let svc = Arc::clone(self);
        let reqs = Arc::new(reqs);
        let (g, r) = (Arc::clone(&groups), Arc::clone(&reqs));
        let grouped: Vec<Vec<(usize, Response)>> = pool_map(groups.len(), move |gi| {
            g[gi].iter().map(|&i| (i, svc.apply(&r[i]))).collect()
        });
        let mut out: Vec<Option<Response>> = (0..n).map(|_| None).collect();
        for group in grouped {
            for (i, resp) in group {
                out[i] = Some(resp);
            }
        }
        out.into_iter().flatten().collect()
    }
}

/// One pending slot of the serve loop's current batch: either a parsed
/// request or the error its line produced (answered in order as `ERR`).
type Slot = Result<Request, String>;

fn flush_batch<W: Write>(
    svc: &Arc<ShardedService>,
    batch: &mut Vec<Slot>,
    out: &mut W,
) -> io::Result<()> {
    if batch.is_empty() {
        return Ok(());
    }
    let reqs: Vec<Request> = batch
        .iter()
        .filter_map(|s| s.as_ref().ok().cloned())
        .collect();
    let mut responses = svc.apply_batch(reqs).into_iter();
    for slot in batch.drain(..) {
        match slot {
            Ok(_) => match responses.next() {
                Some(resp) => writeln!(out, "{resp}")?,
                None => writeln!(out, "ERR internal: missing response")?,
            },
            Err(message) => writeln!(out, "ERR {message}")?,
        }
    }
    out.flush()
}

/// Serve the line protocol on an arbitrary reader/writer pair until EOF or
/// `QUIT`. Blank lines flush the current batch through the worker pool;
/// malformed lines answer `ERR` in order and never tear the loop down.
pub fn serve<R: BufRead, W: Write>(
    svc: &Arc<ShardedService>,
    mut input: R,
    output: &mut W,
) -> io::Result<()> {
    let mut batch: Vec<Slot> = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            flush_batch(svc, &mut batch, output)?;
            continue;
        }
        if trimmed == "QUIT" {
            break;
        }
        let head = trimmed.to_string();
        let req = Request::parse(&head, || {
            let mut payload = String::new();
            match input.read_line(&mut payload) {
                Ok(0) | Err(_) => None,
                Ok(_) => Some(payload.trim_end_matches(['\n', '\r']).to_string()),
            }
        });
        batch.push(req);
    }
    flush_batch(svc, &mut batch, output)
}

/// Serve on a unix socket, one thread per connection (connections share the
/// shard set, so cross-connection tenant routing stays consistent). Removes
/// any stale socket file first. Runs until the process is killed.
pub fn serve_unix(svc: Arc<ShardedService>, path: &Path) -> io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    for conn in listener.incoming() {
        let Ok(stream) = conn else { continue };
        let svc = Arc::clone(&svc);
        std::thread::spawn(move || {
            let Ok(read_half) = stream.try_clone() else {
                return;
            };
            let mut writer = BufWriter::new(stream);
            let _ = serve(&svc, BufReader::new(read_half), &mut writer);
        });
    }
    Ok(())
}

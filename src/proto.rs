//! The line-oriented wire protocol of the admission daemon.
//!
//! Requests, one per line (except `LOAD`, whose header announces how many
//! payload lines follow):
//!
//! ```text
//! LOAD <tenant> <nlines>          # + nlines of system description
//! ADMIT <tenant> job <name> deadline <d> <arrival> [hop <proc> <exec> …]…
//! REMOVE <tenant> <job>
//! SCALE <tenant> <factor>
//! REGION <tenant> <scale-lo> <scale-hi> <scale-steps> <burst-lo> <burst-hi> <burst-steps>
//! STATS <tenant>
//! WCDFP <tenant> fixed <draws> <seed>
//! WCDFP <tenant> adaptive <tolerance> <max-draws> <seed>
//! EVICT <tenant>
//! PING
//! QUIT
//! ```
//!
//! Responses, exactly one line per request, in request order:
//!
//! ```text
//! OK LOAD <tenant> gen=<g> jobs=<n> verdict=<schedulable|unschedulable> [evicted=<tenant>]
//! OK ADMIT <tenant> gen=<g> job=<name> verdict=<admitted|rejected> jobs=<n>
//! OK REMOVE <tenant> gen=<g> job=<name> jobs=<n>
//! OK SCALE <tenant> gen=<g> factor=<f> verdict=<schedulable|unschedulable>
//! OK REGION <tenant> scales=<s1,s2,…> rows=<burst>:<frontier|->;…
//! OK STATS <tenant> gen=<g> jobs=<n> analyses=<a> recomputed=<r> reused=<u> \
//!          verdict_hits=<h> verdict_misses=<m> warm_starts=<w> interned=<c> tenants=<t>
//! OK WCDFP <tenant> draws=<n> converged=<true|false> jobs=<name>:<p>:<lo>:<hi>;…
//! OK EVICT <tenant> existed=<true|false>
//! PONG
//! ERR <message>
//! ```
//!
//! Both directions are typed here ([`Request`], [`Response`]) with
//! `Display` ↔ `parse` inverses, so the property tests can round-trip every
//! form. Floats travel as Rust's shortest-representation `Display`, which
//! `f64::from_str` inverts exactly.

use std::fmt;

use crate::textfmt::{format_job_draft, parse_job_draft, JobDraft};

/// A parsed request line (plus `LOAD` payload).
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Replace (or create) a tenant from a full system description.
    Load {
        /// Tenant key.
        tenant: String,
        /// System description text (no trailing newline).
        system: String,
    },
    /// Trial-admit one job into a warm tenant.
    Admit {
        /// Tenant key.
        tenant: String,
        /// The candidate job spec.
        job: JobDraft,
    },
    /// Remove a resident job by name.
    Remove {
        /// Tenant key.
        tenant: String,
        /// Job name.
        job: String,
    },
    /// Scale every execution demand to `factor ×` the loaded baseline.
    Scale {
        /// Tenant key.
        tenant: String,
        /// Absolute scale factor (relative to the loaded system).
        factor: f64,
    },
    /// Explore the (exec-scale × burst-length) schedulability region.
    Region {
        /// Tenant key.
        tenant: String,
        /// Lowest exec scale.
        scale_lo: f64,
        /// Highest exec scale.
        scale_hi: f64,
        /// Number of scale grid points.
        scale_steps: usize,
        /// Lowest burst length.
        burst_lo: u32,
        /// Highest burst length.
        burst_hi: u32,
        /// Number of burst grid points.
        burst_steps: usize,
    },
    /// Report a tenant's generation and reuse counters.
    Stats {
        /// Tenant key.
        tenant: String,
    },
    /// Estimate per-job deadline-failure probability by Monte-Carlo.
    Wcdfp {
        /// Tenant key.
        tenant: String,
        /// Draw-budget shape (fixed-N or adaptive-to-tolerance).
        spec: WcdfpSpec,
    },
    /// Drop a tenant's warm session.
    Evict {
        /// Tenant key.
        tenant: String,
    },
    /// Liveness probe.
    Ping,
}

/// How a `WCDFP` request sizes its draw budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WcdfpSpec {
    /// Exactly `draws` draws.
    Fixed {
        /// Draw count.
        draws: u64,
        /// Base seed (draw `i` derives from `seed + i`).
        seed: u64,
    },
    /// Rounds of draws until every job's CI half-width is ≤ `tolerance`,
    /// capped at `max_draws`.
    Adaptive {
        /// Target half-width of the per-job confidence intervals.
        tolerance: f64,
        /// Hard draw budget.
        max_draws: u64,
        /// Base seed (draw `i` derives from `seed + i`).
        seed: u64,
    },
}

/// One job's estimate in an `OK WCDFP` response: name, point estimate,
/// and confidence bounds.
#[derive(Clone, Debug, PartialEq)]
pub struct WcdfpJobLine {
    /// Job name.
    pub name: String,
    /// Point estimate of the miss probability.
    pub p: f64,
    /// Lower confidence bound.
    pub lo: f64,
    /// Upper confidence bound.
    pub hi: f64,
}

/// A response line.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// `OK LOAD …`
    Loaded {
        /// Tenant key.
        tenant: String,
        /// Generation stamped on the load.
        generation: u64,
        /// Resident job count.
        jobs: usize,
        /// Whole-system verdict at load time.
        schedulable: bool,
        /// Tenant evicted to make room, if any.
        evicted: Option<String>,
    },
    /// `OK ADMIT …`
    Admitted {
        /// Tenant key.
        tenant: String,
        /// Generation stamped on the attempt.
        generation: u64,
        /// Candidate job name.
        job: String,
        /// Whether the job was kept.
        admitted: bool,
        /// Resident job count after the verdict.
        jobs: usize,
    },
    /// `OK REMOVE …`
    Removed {
        /// Tenant key.
        tenant: String,
        /// Generation stamped on the removal.
        generation: u64,
        /// Removed job name.
        job: String,
        /// Resident job count after removal.
        jobs: usize,
    },
    /// `OK SCALE …`
    Scaled {
        /// Tenant key.
        tenant: String,
        /// Generation stamped on the scaling.
        generation: u64,
        /// The applied factor.
        factor: f64,
        /// Whole-system verdict at the new scale.
        schedulable: bool,
    },
    /// `OK REGION …`
    RegionMap {
        /// Tenant key.
        tenant: String,
        /// Exec-scale grid.
        scales: Vec<f64>,
        /// Per-burst-length rows: `(burst_len, critical-scale frontier)`.
        rows: Vec<(u32, Option<f64>)>,
    },
    /// `OK STATS …`
    Stats {
        /// Tenant key.
        tenant: String,
        /// Latest generation.
        generation: u64,
        /// Resident job count.
        jobs: usize,
        /// Analyses run (excludes memoized verdicts).
        analyses: u64,
        /// Subjob nodes recomputed inside dirty cones.
        recomputed: u64,
        /// Subjob nodes reused from the warm cache.
        reused: u64,
        /// Verdicts answered from the memo table.
        verdict_hits: u64,
        /// Verdicts that required an analysis.
        verdict_misses: u64,
        /// Fixpoint runs started from a carried seed.
        warm_starts: u64,
        /// Curves interned in the tenant's arena.
        interned: usize,
        /// Tenants resident on this tenant's shard.
        tenants: usize,
    },
    /// `OK WCDFP …`
    Wcdfp {
        /// Tenant key.
        tenant: String,
        /// Draws actually simulated.
        draws: u64,
        /// Whether the adaptive stopping rule was met (`true` for fixed runs).
        converged: bool,
        /// Per-job estimates, in job order.
        jobs: Vec<WcdfpJobLine>,
    },
    /// `OK EVICT …`
    Evicted {
        /// Tenant key.
        tenant: String,
        /// Whether the tenant existed.
        existed: bool,
    },
    /// `PONG`
    Pong,
    /// `ERR <message>` — the request failed; the tenant session is intact.
    Err {
        /// Human-readable failure description.
        message: String,
    },
}

fn word(it: &mut std::str::SplitWhitespace, what: &str) -> Result<String, String> {
    it.next()
        .map(str::to_string)
        .ok_or_else(|| format!("missing {what}"))
}

fn num<T: std::str::FromStr>(it: &mut std::str::SplitWhitespace, what: &str) -> Result<T, String>
where
    T::Err: fmt::Display,
{
    word(it, what)?
        .parse()
        .map_err(|e| format!("bad {what}: {e}"))
}

impl Request {
    /// Parse a request from its first line; `LOAD` payload lines are pulled
    /// from `next_line` (return `None` on EOF, which is an error mid-payload).
    pub fn parse(
        first: &str,
        mut next_line: impl FnMut() -> Option<String>,
    ) -> Result<Request, String> {
        let mut it = first.split_whitespace();
        match it.next() {
            Some("LOAD") => {
                let tenant = word(&mut it, "tenant")?;
                let nlines: usize = num(&mut it, "line count")?;
                if nlines > 100_000 {
                    return Err("LOAD payload too large".into());
                }
                let mut system = String::new();
                for i in 0..nlines {
                    let line = next_line()
                        .ok_or_else(|| format!("LOAD payload truncated at line {}", i + 1))?;
                    if i > 0 {
                        system.push('\n');
                    }
                    system.push_str(&line);
                }
                Ok(Request::Load { tenant, system })
            }
            Some("ADMIT") => {
                let tenant = word(&mut it, "tenant")?;
                match it.next() {
                    Some("job") => {}
                    other => return Err(format!("expected 'job', got {other:?}")),
                }
                let mut toks = it.peekable();
                let job = parse_job_draft(&mut toks)?;
                Ok(Request::Admit { tenant, job })
            }
            Some("REMOVE") => Ok(Request::Remove {
                tenant: word(&mut it, "tenant")?,
                job: word(&mut it, "job name")?,
            }),
            Some("SCALE") => Ok(Request::Scale {
                tenant: word(&mut it, "tenant")?,
                factor: num(&mut it, "factor")?,
            }),
            Some("REGION") => Ok(Request::Region {
                tenant: word(&mut it, "tenant")?,
                scale_lo: num(&mut it, "scale-lo")?,
                scale_hi: num(&mut it, "scale-hi")?,
                scale_steps: num(&mut it, "scale-steps")?,
                burst_lo: num(&mut it, "burst-lo")?,
                burst_hi: num(&mut it, "burst-hi")?,
                burst_steps: num(&mut it, "burst-steps")?,
            }),
            Some("STATS") => Ok(Request::Stats {
                tenant: word(&mut it, "tenant")?,
            }),
            Some("WCDFP") => {
                let tenant = word(&mut it, "tenant")?;
                let spec = match word(&mut it, "mode")?.as_str() {
                    "fixed" => WcdfpSpec::Fixed {
                        draws: num(&mut it, "draws")?,
                        seed: num(&mut it, "seed")?,
                    },
                    "adaptive" => WcdfpSpec::Adaptive {
                        tolerance: num(&mut it, "tolerance")?,
                        max_draws: num(&mut it, "max-draws")?,
                        seed: num(&mut it, "seed")?,
                    },
                    other => return Err(format!("bad WCDFP mode '{other}'")),
                };
                Ok(Request::Wcdfp { tenant, spec })
            }
            Some("EVICT") => Ok(Request::Evict {
                tenant: word(&mut it, "tenant")?,
            }),
            Some("PING") => Ok(Request::Ping),
            Some(other) => Err(format!("unknown request '{other}'")),
            None => Err("empty request".into()),
        }
    }

    /// The tenant this request serializes on, if any (`PING` has none).
    pub fn tenant(&self) -> Option<&str> {
        match self {
            Request::Load { tenant, .. }
            | Request::Admit { tenant, .. }
            | Request::Remove { tenant, .. }
            | Request::Scale { tenant, .. }
            | Request::Region { tenant, .. }
            | Request::Stats { tenant }
            | Request::Wcdfp { tenant, .. }
            | Request::Evict { tenant } => Some(tenant),
            Request::Ping => None,
        }
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Load { tenant, system } => {
                let nlines = if system.is_empty() {
                    0
                } else {
                    system.lines().count()
                };
                write!(f, "LOAD {tenant} {nlines}")?;
                for line in system.lines() {
                    write!(f, "\n{line}")?;
                }
                Ok(())
            }
            Request::Admit { tenant, job } => {
                write!(f, "ADMIT {tenant} job {}", format_job_draft(job))
            }
            Request::Remove { tenant, job } => write!(f, "REMOVE {tenant} {job}"),
            Request::Scale { tenant, factor } => write!(f, "SCALE {tenant} {factor}"),
            Request::Region {
                tenant,
                scale_lo,
                scale_hi,
                scale_steps,
                burst_lo,
                burst_hi,
                burst_steps,
            } => write!(
                f,
                "REGION {tenant} {scale_lo} {scale_hi} {scale_steps} {burst_lo} {burst_hi} {burst_steps}"
            ),
            Request::Stats { tenant } => write!(f, "STATS {tenant}"),
            Request::Wcdfp { tenant, spec } => match spec {
                WcdfpSpec::Fixed { draws, seed } => {
                    write!(f, "WCDFP {tenant} fixed {draws} {seed}")
                }
                WcdfpSpec::Adaptive {
                    tolerance,
                    max_draws,
                    seed,
                } => write!(f, "WCDFP {tenant} adaptive {tolerance} {max_draws} {seed}"),
            },
            Request::Evict { tenant } => write!(f, "EVICT {tenant}"),
            Request::Ping => write!(f, "PING"),
        }
    }
}

fn verdict_word(schedulable: bool) -> &'static str {
    if schedulable {
        "schedulable"
    } else {
        "unschedulable"
    }
}

fn kv<'a>(tok: &'a str, key: &str) -> Result<&'a str, String> {
    let (k, v) = tok
        .split_once('=')
        .ok_or_else(|| format!("expected {key}=…, got '{tok}'"))?;
    if k != key {
        return Err(format!("expected {key}=…, got '{tok}'"));
    }
    Ok(v)
}

fn kv_num<T: std::str::FromStr>(it: &mut std::str::SplitWhitespace, key: &str) -> Result<T, String>
where
    T::Err: fmt::Display,
{
    kv(it.next().ok_or_else(|| format!("missing {key}="))?, key)?
        .parse()
        .map_err(|e| format!("bad {key}: {e}"))
}

fn kv_verdict(it: &mut std::str::SplitWhitespace, yes: &str, no: &str) -> Result<bool, String> {
    let v = kv(it.next().ok_or("missing verdict=")?, "verdict")?;
    if v == yes {
        Ok(true)
    } else if v == no {
        Ok(false)
    } else {
        Err(format!("bad verdict '{v}'"))
    }
}

impl Response {
    /// Parse a response line.
    pub fn parse(line: &str) -> Result<Response, String> {
        let mut it = line.split_whitespace();
        match it.next() {
            Some("PONG") => Ok(Response::Pong),
            Some("ERR") => Ok(Response::Err {
                message: line.trim_start()["ERR".len()..].trim().to_string(),
            }),
            Some("OK") => Response::parse_ok(&mut it),
            other => Err(format!("bad response start {other:?}")),
        }
    }

    fn parse_ok(it: &mut std::str::SplitWhitespace) -> Result<Response, String> {
        let op = word(it, "op")?;
        let tenant = word(it, "tenant")?;
        match op.as_str() {
            "LOAD" => {
                let generation = kv_num(it, "gen")?;
                let jobs = kv_num(it, "jobs")?;
                let schedulable = kv_verdict(it, "schedulable", "unschedulable")?;
                let evicted = match it.next() {
                    Some(tok) => Some(kv(tok, "evicted")?.to_string()),
                    None => None,
                };
                Ok(Response::Loaded {
                    tenant,
                    generation,
                    jobs,
                    schedulable,
                    evicted,
                })
            }
            "ADMIT" => Ok(Response::Admitted {
                tenant,
                generation: kv_num(it, "gen")?,
                job: kv(it.next().ok_or("missing job=")?, "job")?.to_string(),
                admitted: kv_verdict(it, "admitted", "rejected")?,
                jobs: kv_num(it, "jobs")?,
            }),
            "REMOVE" => Ok(Response::Removed {
                tenant,
                generation: kv_num(it, "gen")?,
                job: kv(it.next().ok_or("missing job=")?, "job")?.to_string(),
                jobs: kv_num(it, "jobs")?,
            }),
            "SCALE" => Ok(Response::Scaled {
                tenant,
                generation: kv_num(it, "gen")?,
                factor: kv_num(it, "factor")?,
                schedulable: kv_verdict(it, "schedulable", "unschedulable")?,
            }),
            "REGION" => {
                let scales_str = kv(it.next().ok_or("missing scales=")?, "scales")?;
                let mut scales = Vec::new();
                if !scales_str.is_empty() {
                    for s in scales_str.split(',') {
                        scales.push(s.parse::<f64>().map_err(|e| format!("bad scale: {e}"))?);
                    }
                }
                let rows_str = kv(it.next().ok_or("missing rows=")?, "rows")?;
                let mut rows = Vec::new();
                if !rows_str.is_empty() {
                    for r in rows_str.split(';') {
                        let (b, fr) = r
                            .split_once(':')
                            .ok_or_else(|| format!("bad region row '{r}'"))?;
                        let burst = b.parse::<u32>().map_err(|e| format!("bad burst: {e}"))?;
                        let frontier = if fr == "-" {
                            None
                        } else {
                            Some(
                                fr.parse::<f64>()
                                    .map_err(|e| format!("bad frontier: {e}"))?,
                            )
                        };
                        rows.push((burst, frontier));
                    }
                }
                Ok(Response::RegionMap {
                    tenant,
                    scales,
                    rows,
                })
            }
            "STATS" => Ok(Response::Stats {
                tenant,
                generation: kv_num(it, "gen")?,
                jobs: kv_num(it, "jobs")?,
                analyses: kv_num(it, "analyses")?,
                recomputed: kv_num(it, "recomputed")?,
                reused: kv_num(it, "reused")?,
                verdict_hits: kv_num(it, "verdict_hits")?,
                verdict_misses: kv_num(it, "verdict_misses")?,
                warm_starts: kv_num(it, "warm_starts")?,
                interned: kv_num(it, "interned")?,
                tenants: kv_num(it, "tenants")?,
            }),
            "WCDFP" => {
                let draws = kv_num(it, "draws")?;
                let converged = kv_num(it, "converged")?;
                let jobs_str = kv(it.next().ok_or("missing jobs=")?, "jobs")?;
                let mut jobs = Vec::new();
                if !jobs_str.is_empty() {
                    for j in jobs_str.split(';') {
                        let mut parts = j.split(':');
                        let name = parts
                            .next()
                            .filter(|s| !s.is_empty())
                            .ok_or_else(|| format!("bad wcdfp job '{j}'"))?
                            .to_string();
                        let mut f64_part = |what: &str| -> Result<f64, String> {
                            parts
                                .next()
                                .ok_or_else(|| format!("missing {what} in '{j}'"))?
                                .parse()
                                .map_err(|e| format!("bad {what}: {e}"))
                        };
                        let p = f64_part("p")?;
                        let lo = f64_part("lo")?;
                        let hi = f64_part("hi")?;
                        if parts.next().is_some() {
                            return Err(format!("trailing fields in wcdfp job '{j}'"));
                        }
                        jobs.push(WcdfpJobLine { name, p, lo, hi });
                    }
                }
                Ok(Response::Wcdfp {
                    tenant,
                    draws,
                    converged,
                    jobs,
                })
            }
            "EVICT" => Ok(Response::Evicted {
                tenant,
                existed: kv_num(it, "existed")?,
            }),
            other => Err(format!("unknown OK op '{other}'")),
        }
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Loaded {
                tenant,
                generation,
                jobs,
                schedulable,
                evicted,
            } => {
                write!(
                    f,
                    "OK LOAD {tenant} gen={generation} jobs={jobs} verdict={}",
                    verdict_word(*schedulable)
                )?;
                if let Some(e) = evicted {
                    write!(f, " evicted={e}")?;
                }
                Ok(())
            }
            Response::Admitted {
                tenant,
                generation,
                job,
                admitted,
                jobs,
            } => write!(
                f,
                "OK ADMIT {tenant} gen={generation} job={job} verdict={} jobs={jobs}",
                if *admitted { "admitted" } else { "rejected" }
            ),
            Response::Removed {
                tenant,
                generation,
                job,
                jobs,
            } => write!(
                f,
                "OK REMOVE {tenant} gen={generation} job={job} jobs={jobs}"
            ),
            Response::Scaled {
                tenant,
                generation,
                factor,
                schedulable,
            } => write!(
                f,
                "OK SCALE {tenant} gen={generation} factor={factor} verdict={}",
                verdict_word(*schedulable)
            ),
            Response::RegionMap {
                tenant,
                scales,
                rows,
            } => {
                write!(f, "OK REGION {tenant} scales=")?;
                for (i, s) in scales.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, " rows=")?;
                for (i, (burst, frontier)) in rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, ";")?;
                    }
                    match frontier {
                        Some(x) => write!(f, "{burst}:{x}")?,
                        None => write!(f, "{burst}:-")?,
                    }
                }
                Ok(())
            }
            Response::Stats {
                tenant,
                generation,
                jobs,
                analyses,
                recomputed,
                reused,
                verdict_hits,
                verdict_misses,
                warm_starts,
                interned,
                tenants,
            } => write!(
                f,
                "OK STATS {tenant} gen={generation} jobs={jobs} analyses={analyses} \
                 recomputed={recomputed} reused={reused} verdict_hits={verdict_hits} \
                 verdict_misses={verdict_misses} warm_starts={warm_starts} \
                 interned={interned} tenants={tenants}"
            ),
            Response::Wcdfp {
                tenant,
                draws,
                converged,
                jobs,
            } => {
                write!(
                    f,
                    "OK WCDFP {tenant} draws={draws} converged={converged} jobs="
                )?;
                for (i, j) in jobs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ";")?;
                    }
                    write!(f, "{}:{}:{}:{}", j.name, j.p, j.lo, j.hi)?;
                }
                Ok(())
            }
            Response::Evicted { tenant, existed } => {
                write!(f, "OK EVICT {tenant} existed={existed}")
            }
            Response::Pong => write!(f, "PONG"),
            Response::Err { message } => write!(f, "ERR {message}"),
        }
    }
}

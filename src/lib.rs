//! # bursty-rta — umbrella crate
//!
//! Response time analysis for distributed real-time systems with bursty job
//! arrivals, after Li, Bettati & Zhao (ICPP 1998).
//!
//! This crate re-exports the workspace members under one roof:
//!
//! * [`curves`] — exact piecewise-linear curve algebra ([`rta_curves`])
//! * [`model`] — system model, arrival patterns, workload generators
//!   ([`rta_model`])
//! * [`analysis`] — the service-function schedulability analysis
//!   ([`rta_core`])
//! * [`sim`] — discrete-event simulator for validation ([`rta_sim`])
//!
//! See `examples/quickstart.rs` for an end-to-end tour and `DESIGN.md` for
//! the paper-to-code map.

#![forbid(unsafe_code)]

pub use rta_core as analysis;
pub use rta_curves as curves;
pub use rta_model as model;
pub use rta_sim as sim;

pub mod daemon;
pub mod proto;
pub mod textfmt;

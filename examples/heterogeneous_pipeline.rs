//! A heterogeneous pipeline — the paper's Section 6 point that the
//! methodology "can handle heterogeneous systems, where different
//! processors run different schedulers": an SPP ingest stage, an SPNP
//! compute stage and an FCFS egress stage, analyzed with the Theorem 4
//! bounds, plus a cyclic ("physical loop") variant handled by the
//! Section 6 fixed-point extension.
//!
//! Run with: `cargo run --example heterogeneous_pipeline`

use bursty_rta::analysis::fixpoint::analyze_with_loops;
use bursty_rta::analysis::{analyze_bounds, AnalysisConfig, AnalysisError};
use bursty_rta::curves::Time;
use bursty_rta::model::priority::{assign_priorities, PriorityPolicy};
use bursty_rta::model::{ArrivalPattern, SchedulerKind, SubjobRef, SystemBuilder};

fn periodic(p: i64) -> ArrivalPattern {
    ArrivalPattern::Periodic {
        period: Time(p),
        offset: Time::ZERO,
    }
}

fn main() {
    // --- Part 1: SPP → SPNP → FCFS pipeline. ---
    let mut b = SystemBuilder::new();
    let ingest = b.add_processor("ingest (SPP)", SchedulerKind::Spp);
    let compute = b.add_processor("compute (SPNP)", SchedulerKind::Spnp);
    let egress = b.add_processor("egress (FCFS)", SchedulerKind::Fcfs);
    b.add_job(
        "pipeline-A",
        Time(600),
        periodic(200),
        vec![(ingest, Time(30)), (compute, Time(50)), (egress, Time(40))],
    );
    b.add_job(
        "pipeline-B",
        Time(900),
        periodic(300),
        vec![(ingest, Time(40)), (compute, Time(70)), (egress, Time(60))],
    );
    b.add_job(
        "local-compute",
        Time(800),
        periodic(400),
        vec![(compute, Time(90))],
    );
    let mut sys = b.build().unwrap();
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();

    let report = analyze_bounds(&sys, &AnalysisConfig::default()).unwrap();
    println!("heterogeneous pipeline — Theorem 4 bounds\n");
    for jb in &report.jobs {
        let job = sys.job(jb.job);
        let hops: Vec<String> = jb
            .hop_delays
            .iter()
            .map(|d| d.map_or("∞".into(), |t| t.ticks().to_string()))
            .collect();
        println!(
            "  {:<14} per-hop delays [{}] -> e2e ≤ {:?} (deadline {}) {}",
            job.name,
            hops.join(", "),
            jb.e2e_bound.map(|t| t.ticks()),
            job.deadline,
            if jb.schedulable() { "ok" } else { "MISS" }
        );
    }
    assert!(report.all_schedulable());

    // --- Part 2: a physical loop (job revisits interference cyclically). ---
    let mut b = SystemBuilder::new();
    let p1 = b.add_processor("P1", SchedulerKind::Spp);
    let p2 = b.add_processor("P2", SchedulerKind::Spp);
    let t1 = b.add_job(
        "loop-1",
        Time(500),
        periodic(250),
        vec![(p1, Time(20)), (p2, Time(20))],
    );
    let t2 = b.add_job(
        "loop-2",
        Time(500),
        periodic(250),
        vec![(p2, Time(20)), (p1, Time(20))],
    );
    // Interleaved priorities close the dependency cycle of Section 6.
    b.set_priority(SubjobRef { job: t1, index: 0 }, 2);
    b.set_priority(SubjobRef { job: t2, index: 1 }, 1);
    b.set_priority(SubjobRef { job: t1, index: 1 }, 1);
    b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
    let looped = b.build().unwrap();

    println!("\ncyclic topology — one-pass analysis vs fixed-point extension\n");
    match analyze_bounds(&looped, &AnalysisConfig::default()) {
        Err(AnalysisError::CyclicDependency { cycle }) => {
            println!(
                "  one-pass bounds: refused, dependency cycle through {} subjobs",
                cycle.len()
            );
        }
        other => panic!("expected a cycle, got {other:?}"),
    }
    let fixed = analyze_with_loops(&looped, &AnalysisConfig::default(), 8).unwrap();
    for jb in &fixed.jobs {
        println!(
            "  fixpoint:  {:<8} e2e ≤ {:?} (deadline {}) {}",
            looped.job(jb.job).name,
            jb.e2e_bound.map(|t| t.ticks()),
            looped.job(jb.job).deadline,
            if jb.schedulable() { "ok" } else { "MISS" }
        );
    }
    assert!(fixed.all_schedulable());
}

//! Reproduce Figure 1: the arrival functions of a periodic stream and of
//! the paper's bursty hyperbolic stream (Eq. 27), printed as ASCII step
//! plots over the same window.
//!
//! Run with: `cargo run --example arrival_functions`

use bursty_rta::curves::Time;
use bursty_rta::model::ArrivalPattern;

fn plot(label: &str, pattern: &ArrivalPattern, window: Time, cols: usize) {
    let curve = pattern.arrival_curve(window);
    let max = curve.count_at(window).max(1);
    println!(
        "{label}  ({} arrivals in [0, {window}])",
        curve.count_at(window)
    );
    for row in (1..=max).rev() {
        let mut line = format!("{row:>3} |");
        for c in 0..cols {
            let t = Time(window.ticks() * c as i64 / cols as i64);
            line.push(if curve.count_at(t) >= row { '#' } else { ' ' });
        }
        println!("{line}");
    }
    println!("    +{}", "-".repeat(cols));
    println!(
        "     0{:>width$}\n",
        format!("t={window}"),
        width = cols - 1
    );
}

fn main() {
    let tpu = 1000;
    let window = Time(12_000); // 12 model-time units

    // Periodic: one instance every 2 units (Eq. 25 with x = 0.5).
    let periodic = ArrivalPattern::Periodic {
        period: Time(2_000),
        offset: Time::ZERO,
    };
    plot("periodic, period = 2 units", &periodic, window, 60);

    // Bursty: Eq. 27 with the same long-run rate (x = 0.5) — the early
    // instances bunch up, then the stream settles to the same period.
    let bursty = ArrivalPattern::Hyperbolic {
        x: 0.5,
        ticks_per_unit: tpu,
    };
    plot("bursty (Eq. 27), x = 0.5", &bursty, window, 60);

    // A burst train, the classic bursty-sporadic shape.
    let train = ArrivalPattern::BurstTrain {
        burst_len: 3,
        intra_gap: Time(200),
        train_period: Time(4_000),
        offset: Time::ZERO,
    };
    plot("burst train, 3 per 4 units", &train, window, 60);

    // The bursty stream dominates the periodic one pointwise (it releases
    // every instance no later), which is exactly why it is harder to serve.
    let (cb, cp) = (bursty.arrival_curve(window), periodic.arrival_curve(window));
    for t in (0..=window.ticks()).step_by(250) {
        assert!(cb.count_at(Time(t)) >= cp.count_at(Time(t)));
    }
    println!("check: bursty arrival curve dominates the periodic one pointwise");
}

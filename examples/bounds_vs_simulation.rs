//! Empirical response-time distributions vs. analytic bounds, at scale.
//!
//! Uses [`bursty_rta::sim::batch`] to re-draw a bursty job shop many
//! times, simulate every draw on the calendar-queue event core, run the
//! Theorem 4 analysis on the same draw, and print the per-job
//! observed-vs-analytic tightness gap — the measurement behind the
//! EXPERIMENTS.md bound-tightness table. This replaces the old
//! single-trajectory curve comparison: one trace shows that the bounds
//! bracket one run; the replication shows how much headroom the bound
//! leaves over the *distribution* of runs, and that no draw ever crosses
//! it.
//!
//! Run with: `cargo run --release --example bounds_vs_simulation`

use bursty_rta::model::distributions::Dist;
use bursty_rta::model::jobshop::{ShopArrivals, ShopConfig};
use bursty_rta::model::SchedulerKind;
use bursty_rta::sim::batch::{replicate_with_bounds, BatchConfig};

fn main() {
    // A 2-stage SPP shop under the paper's Eq. 27 bursty arrivals,
    // re-drawn 200 times: every draw is simulated and analyzed, giving an
    // empirical response distribution per job next to its analytic bound.
    let shop = ShopConfig {
        stages: 2,
        procs_per_stage: 2,
        n_jobs: 5,
        scheduler: SchedulerKind::Spp,
        utilization: 0.7,
        arrivals: ShopArrivals::Bursty {
            deadline: Dist::Exponential { mean: 6.0 },
        },
        x_min: 0.25,
        ticks_per_unit: 100,
    };
    let cfg = BatchConfig {
        draws: 200,
        base_seed: 42,
    };
    let report = replicate_with_bounds(&shop, &cfg);

    println!(
        "bursty 2-stage SPP shop, {} draws (seeds {}..{}), {} analysis failures",
        report.draws,
        cfg.base_seed,
        cfg.base_seed + report.draws as u64,
        report.analysis_failures
    );
    println!(
        "{:>4} {:>8} {:>6} {:>8} {:>8} {:>8} {:>6} {:>6} {:>5}",
        "job", "samples", "incmp", "p50", "p99", "max", "mean%", "worst%", "viol"
    );
    for (k, stats) in report.jobs.iter().enumerate() {
        let p50 = stats.quantile(0.50).unwrap();
        let p99 = stats.quantile(0.99).unwrap();
        let max = stats.quantile(1.0).unwrap();
        println!(
            "{:>4} {:>8} {:>6} {:>8} {:>8} {:>8} {:>6.1} {:>6.1} {:>5}",
            k,
            stats.samples.len(),
            stats.incomplete,
            p50.ticks(),
            p99.ticks(),
            max.ticks(),
            stats.mean_ratio().unwrap_or(0.0) * 100.0,
            stats.worst_ratio * 100.0,
            stats.violations,
        );
        // SPP bounds are sound: the observed worst case never exceeds them.
        assert_eq!(stats.violations, 0, "job {k}: bound violated");
    }
    println!(
        "\nno simulated response exceeded its Theorem 4 bound \
         (mean/worst% = observed response as a share of the bound)"
    );
}

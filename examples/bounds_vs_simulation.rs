//! Visual comparison of the analytic service-function bounds against the
//! simulator's observed service on a small SPNP system: prints the lower
//! bound, the observed truth and the upper bound side by side.
//!
//! Run with: `cargo run --example bounds_vs_simulation`

use bursty_rta::analysis::spnp::spnp_bounds;
use bursty_rta::analysis::SpnpAvailability;
use bursty_rta::curves::{Curve, Time};
use bursty_rta::model::priority::{assign_priorities, PriorityPolicy};
use bursty_rta::model::{ArrivalPattern, JobId, SchedulerKind, SubjobRef, SystemBuilder};
use bursty_rta::sim::{simulate, SimConfig};

fn main() {
    // Two jobs on one SPNP processor: T1 (high priority, τ=3, period 10),
    // T2 (low priority, τ=7, period 20). T1 suffers blocking from T2.
    let mut b = SystemBuilder::new();
    let p = b.add_processor("P1", SchedulerKind::Spnp);
    b.add_job(
        "T1",
        Time(10),
        ArrivalPattern::Periodic {
            period: Time(10),
            offset: Time::ZERO,
        },
        vec![(p, Time(3))],
    );
    b.add_job(
        "T2",
        Time(20),
        ArrivalPattern::Periodic {
            period: Time(20),
            offset: Time::ZERO,
        },
        vec![(p, Time(7))],
    );
    let mut sys = b.build().unwrap();
    assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();

    let window = Time(40);
    let horizon = Time(80);
    let sim = simulate(&sys, &SimConfig { window, horizon });

    // Analytic Theorem 5/6 bounds for T1 with its Eq. 15 blocking term.
    let t1 = SubjobRef {
        job: JobId(0),
        index: 0,
    };
    let arr = sys.job(JobId(0)).arrival.arrival_curve(window);
    let workload = arr.scale(3);
    let blocking = sys.blocking_time(t1);
    println!("T1 blocking term b (Eq. 15) = {blocking} ticks\n");
    let bounds = spnp_bounds(
        &workload,
        &[],
        &[],
        blocking,
        SpnpAvailability::Conservative,
    )
    .expect("matched peer slices");

    let observed = sim.observed_service(t1);
    println!(
        "{:>5} {:>8} {:>10} {:>8}",
        "t", "lower", "observed", "upper"
    );
    for t in (0..=60).step_by(5) {
        let t = Time(t);
        let (lo, ob, up) = (bounds.lower.eval(t), observed.eval(t), bounds.upper.eval(t));
        println!("{:>5} {:>8} {:>10} {:>8}", t, lo, ob, up);
        assert!(lo <= ob && ob <= up, "bounds must bracket the truth at {t}");
    }
    println!("\nanalytic bounds bracket the simulated service everywhere");

    // End-to-end: T1's worst simulated response vs its per-hop bound.
    let worst = sim.wcrt(JobId(0)).unwrap();
    let dep_lower = bounds.lower.floor_div(3, horizon).unwrap();
    let mut d = Time::ZERO;
    for m in 1..=arr.total_events() {
        let a = arr.event_time(m).unwrap();
        let c = dep_lower.event_time(m).unwrap();
        d = d.max(c - a);
    }
    println!("T1: simulated WCRT {worst}, Theorem 4 hop bound {d}");
    assert!(worst <= d);

    let _: Curve = observed; // (type showcase)
}

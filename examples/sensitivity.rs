//! Sensitivity analysis: how much execution-time headroom a distributed
//! system has before a deadline breaks, via binary search over a uniform
//! scaling factor (λ > 1 = headroom, λ < 1 = over-committed).
//!
//! Run with: `cargo run --example sensitivity`

use bursty_rta::analysis::sensitivity::{critical_scaling, default_oracle, Oracle};
use bursty_rta::analysis::AnalysisConfig;
use bursty_rta::curves::Time;
use bursty_rta::model::jobshop::{generate, ShopArrivals, ShopConfig};
use bursty_rta::model::priority::{assign_priorities, PriorityPolicy};
use bursty_rta::model::SchedulerKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("critical execution-time scaling λ of random 2-stage shops\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "util", "SPP(exact)", "SPNP(bnds)", "FCFS(bnds)"
    );
    let cfg = AnalysisConfig::default();
    for util in [0.3, 0.5, 0.7, 0.9] {
        let mut row = format!("{util:>6.2}");
        for scheduler in [SchedulerKind::Spp, SchedulerKind::Spnp, SchedulerKind::Fcfs] {
            let shop = ShopConfig {
                stages: 2,
                procs_per_stage: 2,
                n_jobs: 5,
                scheduler,
                utilization: util,
                arrivals: ShopArrivals::Periodic {
                    deadline_factor: 2.0,
                },
                x_min: 0.2,
                ticks_per_unit: 500,
            };
            let mut sys = generate(&shop, &mut StdRng::seed_from_u64(2026)).unwrap();
            if scheduler.uses_priorities() {
                assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
            }
            let oracle = default_oracle(&sys);
            let lam = critical_scaling(&sys, &cfg, oracle, 20)
                .expect("analysis ok")
                .map_or("  <1/64".to_string(), |l| format!("{l:>8.3}"));
            row.push_str(&format!(" {lam:>12}"));
        }
        println!("{row}");
    }

    // λ should shrink as the base load grows, and the exact analysis should
    // certify at least as much headroom as the bounds do on SPP systems.
    let shop = |u: f64| ShopConfig {
        stages: 2,
        procs_per_stage: 2,
        n_jobs: 5,
        scheduler: SchedulerKind::Spp,
        utilization: u,
        arrivals: ShopArrivals::Periodic {
            deadline_factor: 2.0,
        },
        x_min: 0.2,
        ticks_per_unit: 500,
    };
    let mut light = generate(&shop(0.3), &mut StdRng::seed_from_u64(1)).unwrap();
    let mut heavy = generate(&shop(0.8), &mut StdRng::seed_from_u64(1)).unwrap();
    assign_priorities(&mut light, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    assign_priorities(&mut heavy, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    let l_light = critical_scaling(&light, &cfg, Oracle::Exact, 20)
        .unwrap()
        .unwrap();
    let l_heavy = critical_scaling(&heavy, &cfg, Oracle::Exact, 20)
        .unwrap()
        .unwrap();
    assert!(l_light > l_heavy, "headroom must shrink with load");
    let b_light = critical_scaling(&light, &cfg, Oracle::Bounds, 20)
        .unwrap()
        .unwrap();
    assert!(
        l_light >= b_light - 1e-6,
        "exact certifies at least the bounds' headroom"
    );
    println!(
        "\nchecks: λ(U=0.3) = {l_light:.3} > λ(U=0.8) = {l_heavy:.3}; exact ≥ bounds ({b_light:.3})"
    );
    let _ = Time::ZERO;
}

//! Schedulability-region exploration: how execution-time headroom erodes
//! as arrival bursts grow, on a processing pipeline with one bursty source.
//!
//! Walks a 32×32 (execution-scale × burst-length) grid through a single
//! incremental analysis session and prints the region as JSON on stdout
//! (an ASCII map and reuse counters go to stderr, so the JSON can be
//! redirected to a file).
//!
//! Run with: `cargo run --release --example region_explorer > region.json`

use bursty_rta::analysis::sensitivity::region::{explore_region, RegionConfig};
use bursty_rta::analysis::sensitivity::Oracle;
use bursty_rta::analysis::AnalysisConfig;
use bursty_rta::curves::Time;
use bursty_rta::model::priority::{assign_priorities, PriorityPolicy};
use bursty_rta::model::{ArrivalPattern, SchedulerKind, SystemBuilder, TaskSystem};

/// Eight SPP stages. A burst-train flow crosses the first two; every stage
/// also serves two local periodic jobs. Deadline-monotonic assignment gives
/// the long-deadline flow the lowest priority, so editing its burst length
/// between grid cells dirties only the flow's own two subjobs — the exact
/// path re-derives that small cone and serves the sixteen local jobs from
/// the session's curve and verdict caches (watch the reuse counters below).
fn pipeline() -> TaskSystem {
    let mut b = SystemBuilder::new();
    let procs: Vec<_> = (0..8)
        .map(|i| b.add_processor(format!("stage-{}", i + 1), SchedulerKind::Spp))
        .collect();
    b.add_job(
        "bursty-flow",
        Time(300),
        ArrivalPattern::BurstTrain {
            burst_len: 1,
            intra_gap: Time(8),
            train_period: Time(400),
            offset: Time::ZERO,
        },
        vec![(procs[0], Time(10)), (procs[1], Time(10))],
    );
    for (i, &p) in procs.iter().enumerate() {
        let i = i as i64;
        b.add_job(
            format!("local-a{}", i + 1),
            Time(80),
            ArrivalPattern::Periodic {
                period: Time(80),
                offset: Time(i * 7 % 80),
            },
            vec![(p, Time(16))],
        );
        b.add_job(
            format!("local-b{}", i + 1),
            Time(120),
            ArrivalPattern::Periodic {
                period: Time(120),
                offset: Time((5 + i * 11) % 120),
            },
            vec![(p, Time(20))],
        );
    }
    let mut sys = b.build().unwrap();
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    sys
}

fn main() {
    let sys = pipeline();
    let cfg = AnalysisConfig::default();
    // Burst lengths 1..=32; the train period (400) comfortably exceeds the
    // widest burst extent (31 · 8 = 248), so every row is a valid model.
    // Under the exact oracle the explorer walks scale-outer/burst-inner:
    // each column pins one execution scaling, then grows the burst via
    // small-cone `set_arrival` edits until the first deadline miss.
    let region = RegionConfig::grid(0.25, 4.0, 32, 1, 32, 32, Oracle::Exact);
    let report = explore_region(&sys, &cfg, &region).expect("analysis ok");

    eprintln!("schedulability region ('#' schedulable, '.' not; scale → right):");
    for row in &report.rows {
        let mask: String = row
            .schedulable
            .iter()
            .map(|&s| if s { '#' } else { '.' })
            .collect();
        let frontier = row
            .frontier
            .map_or("      -".to_string(), |f| format!("{f:7.3}"));
        eprintln!("  burst {:>2} | {mask} | λ* = {frontier}", row.burst_len);
    }
    let s = report.stats;
    eprintln!(
        "\n{} of {} grid points probed ({} analyses; {} subjobs recomputed, {} served from cache)",
        report.probes,
        report.scales.len() * report.rows.len(),
        s.analyses,
        s.subjobs_recomputed,
        s.subjobs_reused,
    );

    print!("{}", report.to_json());
}

//! Online admission control with bursty arrivals — the motivating use case
//! of the paper's introduction: jobs with *arbitrary* arrival patterns ask
//! to join a running distributed system, and the exact analysis decides
//! admission without any periodicity assumption.
//!
//! Run with: `cargo run --example admission_control`

use bursty_rta::analysis::{analyze_exact_spp, AnalysisConfig};
use bursty_rta::curves::Time;
use bursty_rta::model::priority::{assign_priorities, PriorityPolicy};
use bursty_rta::model::{ArrivalPattern, ProcessorId, SchedulerKind, SystemBuilder, TaskSystem};

/// Candidate jobs asking to join, in arrival order.
struct Candidate {
    name: &'static str,
    deadline: Time,
    arrival: ArrivalPattern,
    chain: Vec<(ProcessorId, Time)>,
}

fn build(accepted: &[&Candidate]) -> TaskSystem {
    let mut b = SystemBuilder::new();
    let p1 = b.add_processor("P1", SchedulerKind::Spp);
    let p2 = b.add_processor("P2", SchedulerKind::Spp);
    let p3 = b.add_processor("P3", SchedulerKind::Spp);
    let map = |p: ProcessorId| [p1, p2, p3][p.0];
    for c in accepted {
        b.add_job(
            c.name,
            c.deadline,
            c.arrival.clone(),
            c.chain.iter().map(|(p, e)| (map(*p), *e)).collect(),
        );
    }
    let mut sys = b.build().expect("valid");
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).expect("priorities");
    sys
}

fn main() {
    let tpu = 1000;
    let candidates = [
        Candidate {
            name: "video-frames",
            deadline: Time(3_000),
            arrival: ArrivalPattern::Periodic {
                period: Time(2_000),
                offset: Time::ZERO,
            },
            chain: vec![(ProcessorId(0), Time(500)), (ProcessorId(1), Time(600))],
        },
        Candidate {
            name: "sensor-bursts",
            deadline: Time(5_000),
            arrival: ArrivalPattern::BurstTrain {
                burst_len: 4,
                intra_gap: Time(100),
                train_period: Time(8_000),
                offset: Time::ZERO,
            },
            chain: vec![(ProcessorId(0), Time(400)), (ProcessorId(2), Time(700))],
        },
        Candidate {
            name: "alarm-stream",
            deadline: Time(4_000),
            arrival: ArrivalPattern::Hyperbolic {
                x: 0.6,
                ticks_per_unit: tpu,
            },
            chain: vec![(ProcessorId(1), Time(300)), (ProcessorId(2), Time(400))],
        },
        Candidate {
            name: "bulk-transfer",
            deadline: Time(2_500),
            arrival: ArrivalPattern::Periodic {
                period: Time(1_500),
                offset: Time::ZERO,
            },
            chain: vec![(ProcessorId(0), Time(900)), (ProcessorId(1), Time(900))],
        },
    ];

    let cfg = AnalysisConfig {
        arrival_window: Some(Time(16_000)),
        ..Default::default()
    };
    let mut accepted: Vec<&Candidate> = Vec::new();
    println!("admission control over a 3-processor SPP system\n");
    for cand in &candidates {
        let mut trial: Vec<&Candidate> = accepted.clone();
        trial.push(cand);
        let sys = build(&trial);
        let report = analyze_exact_spp(&sys, &cfg).expect("analysis");
        if report.all_schedulable() {
            println!(
                "  ACCEPT {:<14} (all WCRTs within deadlines; worst new WCRT {:?})",
                cand.name,
                report.jobs.last().unwrap().wcrt.map(|t| t.ticks()),
            );
            accepted = trial;
        } else {
            let victims: Vec<&str> = report
                .jobs
                .iter()
                .filter(|j| !j.schedulable())
                .map(|j| sys.job(j.job).name.as_str())
                .map(|n| if n == cand.name { "itself" } else { n })
                .collect();
            println!(
                "  REJECT {:<14} (would break: {})",
                cand.name,
                victims.join(", ")
            );
        }
    }
    println!(
        "\nadmitted set: {:?}",
        accepted.iter().map(|c| c.name).collect::<Vec<_>>()
    );
    assert!(!accepted.is_empty());
}

//! Analytic schedulability verdicts vs Monte-Carlo deadline-failure
//! probabilities, side by side over a 2-D parameter grid.
//!
//! The analysis answers a worst-case question — *can* any arrival
//! realization miss a deadline? — while the WCDFP estimator answers a
//! probabilistic one — how *often* does a uniformly drawn realization
//! miss? Sweeping execution scale against the jitter window shows the
//! two regimes and the gap between them:
//!
//! - Where the analysis says **schedulable**, no realization may miss;
//!   the estimator must report `P(miss) = 0` in every cell. The example
//!   asserts this (a sampled miss inside the analytic region would be a
//!   soundness bug in the bounds).
//! - Where the analysis says **unschedulable**, the estimated `P(miss)`
//!   grades the verdict: small near the frontier, climbing toward 1 deep
//!   in the region. A cell that never misses in any draw is marked `·`
//!   (bound pessimism, or a worst case too rare to sample). On this grid
//!   no such cell appears: a draw covers five flow instances with
//!   independent jitter over the 480-tick arrival window, so even a bad
//!   alignment that is rare per instance is amplified into a likely
//!   per-draw hit — the measured frontier is sharp (see EXPERIMENTS.md).
//!
//! Run with: `cargo run --release --example wcdfp_vs_region`

use bursty_rta::analysis::AnalysisConfig;
use bursty_rta::curves::Time;
use bursty_rta::model::priority::{assign_priorities, PriorityPolicy};
use bursty_rta::model::{ArrivalPattern, SchedulerKind, SystemBuilder, TaskSystem};
use bursty_rta::textfmt::analyze_cold;
use rta_sim::wcdfp::{estimate_fixed, DrawModel, WcdfpConfig};

const DRAWS: u64 = 2_000;

/// A two-stage pipeline: a jittery flow crosses both processors, and each
/// stage serves one higher-priority periodic local job. `scale` multiplies
/// every execution time (percent); `jitter` widens the flow's release
/// window, which both grows the analytic worst case and randomizes the
/// realizations the estimator draws.
fn system(scale_pct: i64, jitter: i64) -> TaskSystem {
    let exec = |base: i64| Time((base * scale_pct + 99) / 100);
    let mut b = SystemBuilder::new();
    let p1 = b.add_processor("P1", SchedulerKind::Spp);
    let p2 = b.add_processor("P2", SchedulerKind::Spp);
    b.add_job(
        "flow",
        Time(58),
        ArrivalPattern::PeriodicJitter {
            period: Time(120),
            jitter: Time(jitter),
            offset: Time::ZERO,
        },
        vec![(p1, exec(18)), (p2, exec(18))],
    );
    // A sporadic interferer at top priority on P1. The analysis charges
    // its envelope — arrivals at every min-gap, phased worst-case against
    // the flow — while the simulator draws gaps uniformly from
    // [min_gap, 2·min_gap] with random phase, so near the frontier the
    // analytic verdict flips long before sampled misses appear.
    b.add_job(
        "sporadic-src",
        Time(30),
        ArrivalPattern::SporadicEnvelope { min_gap: Time(70) },
        vec![(p1, exec(10))],
    );
    b.add_job(
        "local-1",
        Time(40),
        ArrivalPattern::Periodic {
            period: Time(40),
            offset: Time(5),
        },
        vec![(p1, exec(14))],
    );
    b.add_job(
        "local-2",
        Time(60),
        ArrivalPattern::Periodic {
            period: Time(60),
            offset: Time(11),
        },
        vec![(p2, exec(16))],
    );
    let mut sys = b.build().unwrap();
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    sys
}

fn main() {
    let cfg = AnalysisConfig::default();
    let wcfg = WcdfpConfig {
        sketches: false, // verdict-only: miss probabilities, no sketches
        ..WcdfpConfig::default()
    };
    let scales: Vec<i64> = (0..10).map(|i| 80 + 5 * i).collect(); // 80%..125%
    let jitters: Vec<i64> = (0..6).map(|i| 4 * i).collect(); // 0..20 ticks

    println!(
        "grid: execution scale {}%..{}% (rows x{}), jitter 0..{} ticks (cols x{}), \
         {DRAWS} draws/cell",
        scales[0],
        scales[scales.len() - 1],
        scales.len(),
        jitters[jitters.len() - 1],
        jitters.len()
    );
    println!("  '#' analytic schedulable (sampled P(miss) must be 0)");
    println!("  '·' analytic unschedulable, no sampled miss (bound pessimism)");
    println!("  '1'-'9' analytic unschedulable, ceil(9 * max-job P(miss))\n");

    let mut pessimism = 0u32;
    let mut agree_miss = 0u32;
    let mut schedulable_cells = 0u32;
    for &scale in &scales {
        let mut row = String::new();
        let mut worst_p = 0.0f64;
        for &jitter in &jitters {
            let sys = system(scale, jitter);
            let (analytic_ok, _) = analyze_cold(&sys, &cfg).expect("analysis ok");
            let rep = estimate_fixed(&DrawModel::Arrivals(sys), &wcfg, DRAWS);
            let p_max = rep.estimates.iter().map(|e| e.p).fold(0.0f64, f64::max);
            worst_p = worst_p.max(p_max);
            row.push(match (analytic_ok, p_max > 0.0) {
                (true, true) => panic!(
                    "soundness violation at scale {scale}% jitter {jitter}: analysis says \
                     schedulable but {DRAWS} draws sampled P(miss) = {p_max}"
                ),
                (true, false) => {
                    schedulable_cells += 1;
                    '#'
                }
                (false, false) => {
                    pessimism += 1;
                    '·'
                }
                (false, true) => {
                    agree_miss += 1;
                    char::from_digit((p_max * 9.0).ceil() as u32, 10).unwrap_or('9')
                }
            });
        }
        println!("  scale {scale:>3}% | {row} | max P(miss) {worst_p:.4}");
    }
    println!(
        "\n{schedulable_cells} cells analytically schedulable (all sampled clean), \
         {agree_miss} unschedulable with sampled misses, \
         {pessimism} unschedulable but never missed in {DRAWS} draws (pessimism or rare worst case)"
    );
}

//! Quickstart: build the paper's Figure 2 job shop (4 stages × 2
//! processors, jobs T1 and T2 sharing P1 and P5), run the exact analysis,
//! and cross-check it against the discrete-event simulator.
//!
//! Run with: `cargo run --example quickstart`

use bursty_rta::analysis::{analyze_exact_spp, AnalysisConfig};
use bursty_rta::curves::Time;
use bursty_rta::model::jobshop::figure2_system;
use bursty_rta::model::priority::{assign_priorities, PriorityPolicy};
use bursty_rta::model::{JobId, SchedulerKind};
use bursty_rta::sim::{simulate, SimConfig};

fn main() {
    // The exact topology of the paper's Figure 2, with concrete timing:
    // T1: P1 → P3 → P5 → P7, execution 10 per hop, period 100, deadline 80.
    // T2: P1 → P4 → P5 → P8, execution 20 per hop, period 150, deadline 200.
    let mut sys = figure2_system(
        SchedulerKind::Spp,
        [Time(10); 4],
        Time(100),
        Time(80),
        [Time(20); 4],
        Time(150),
        Time(200),
    )
    .expect("valid system");

    // Priorities via the paper's relative-deadline-monotonic rule (Eq. 24).
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic)
        .expect("priority assignment");

    // Exact worst-case end-to-end response times (Theorems 1–3).
    let cfg = AnalysisConfig::default();
    let report = analyze_exact_spp(&sys, &cfg).expect("analysis");
    println!("Figure 2 job shop — exact SPP analysis");
    println!("(window {}, horizon {})\n", report.window, report.horizon);
    for jr in &report.jobs {
        let job = sys.job(jr.job);
        println!(
            "  {}: WCRT = {:?} ticks, deadline = {} -> {}",
            job.name,
            jr.wcrt.map(|t| t.ticks()),
            job.deadline,
            if jr.schedulable() {
                "schedulable"
            } else {
                "DEADLINE MISS"
            }
        );
    }
    assert!(report.all_schedulable());

    // Ground truth: the simulator must agree instance by instance.
    let (window, horizon) = cfg.resolve(&sys);
    let sim = simulate(&sys, &SimConfig { window, horizon });
    for (k, jr) in report.jobs.iter().enumerate() {
        for m in 1..=sim.instances(JobId(k)) {
            assert_eq!(jr.responses[m - 1], sim.response(JobId(k), m));
        }
    }
    println!("\nsimulator agreement: every instance matches the analysis exactly");

    // Peek at T1's service function on the shared first processor.
    let s = &report.curves[0].service;
    println!(
        "\nT1 hop 1 service on P1: S(10) = {}, S(50) = {}, S(110) = {}",
        s.eval(Time(10)),
        s.eval(Time(50)),
        s.eval(Time(110)),
    );
}

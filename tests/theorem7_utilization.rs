//! Theorem 7 identity: for any work-conserving scheduler, the processor's
//! utilization function computed from the exact aggregate workload
//! (`U(t) = min(t, min_s(t − s + G(s⁻)))`) must equal the simulator's
//! observed busy time — independently of whether the processor runs SPP,
//! SPNP or FCFS (the min-form only uses work conservation).
//!
//! Only the *first* stage qualifies for an exact check (its arrivals are
//! known exactly); single-stage shops are therefore used.

use bursty_rta::curves::{Curve, Time};
use bursty_rta::model::jobshop::{generate, ShopArrivals, ShopConfig};
use bursty_rta::model::priority::{assign_priorities, PriorityPolicy};
use bursty_rta::model::{ProcessorId, SchedulerKind};
use bursty_rta::sim::{simulate, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn theorem7_utilization(workloads: &[Curve]) -> Curve {
    let mut g = Curve::zero();
    for c in workloads {
        g = g.add(c);
    }
    let g_prev = g.shift_right(Time(1), 0);
    Curve::identity()
        .add(&g_prev.sub(&Curve::identity()).running_min())
        .min_with(&Curve::identity())
        .clamp_min(0)
}

#[test]
fn observed_utilization_matches_theorem7_for_all_schedulers() {
    for scheduler in [SchedulerKind::Spp, SchedulerKind::Spnp, SchedulerKind::Fcfs] {
        for seed in 0..15 {
            for util in [0.4, 0.8] {
                let cfg = ShopConfig {
                    stages: 1,
                    procs_per_stage: 2,
                    n_jobs: 5,
                    scheduler,
                    utilization: util,
                    arrivals: ShopArrivals::Periodic {
                        deadline_factor: 3.0,
                    },
                    x_min: 0.25,
                    ticks_per_unit: 100,
                };
                let mut rng = StdRng::seed_from_u64(seed);
                let mut sys = generate(&cfg, &mut rng).unwrap();
                if scheduler.uses_priorities() {
                    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
                }
                let scfg = SimConfig::defaults_for(&sys);
                let sim = simulate(&sys, &scfg);
                for p in 0..sys.processors().len() {
                    let pid = ProcessorId(p);
                    let refs = sys.subjobs_on(pid);
                    if refs.is_empty() {
                        continue;
                    }
                    let workloads: Vec<Curve> = refs
                        .iter()
                        .map(|r| {
                            let job = sys.job(r.job);
                            job.arrival
                                .arrival_curve(scfg.window)
                                .scale(sys.subjob(*r).exec.ticks())
                        })
                        .collect();
                    let analytic = theorem7_utilization(&workloads);
                    let observed = sim.observed_utilization(&sys, pid);
                    // Compare up to the point where horizon truncation can
                    // differ (everything released is served well before
                    // horizon − max deadline).
                    let until = scfg.window;
                    for t in (0..=until.ticks()).step_by(13) {
                        assert_eq!(
                            analytic.eval(Time(t)),
                            observed.eval(Time(t)),
                            "{scheduler} seed {seed} util {util} proc {p} t={t}"
                        );
                    }
                }
            }
        }
    }
}

//! Failure injection: malformed systems, cyclic topologies, truncated
//! horizons — every error path must fail loudly and conservatively, never
//! by silently admitting.

use bursty_rta::analysis::fixpoint::analyze_with_loops;
use bursty_rta::analysis::{analyze_bounds, analyze_exact_spp, AnalysisConfig, AnalysisError};
use bursty_rta::curves::Time;
use bursty_rta::model::priority::{assign_priorities, PriorityPolicy};
use bursty_rta::model::{
    ArrivalPattern, ModelError, SchedulerKind, SubjobRef, SystemBuilder, TaskSystem,
};

fn periodic(p: i64) -> ArrivalPattern {
    ArrivalPattern::Periodic {
        period: Time(p),
        offset: Time::ZERO,
    }
}

fn cyclic_system() -> TaskSystem {
    let mut b = SystemBuilder::new();
    let p1 = b.add_processor("P1", SchedulerKind::Spp);
    let p2 = b.add_processor("P2", SchedulerKind::Spp);
    let t1 = b.add_job(
        "T1",
        Time(100),
        periodic(50),
        vec![(p1, Time(5)), (p2, Time(5))],
    );
    let t2 = b.add_job(
        "T2",
        Time(100),
        periodic(50),
        vec![(p2, Time(5)), (p1, Time(5))],
    );
    b.set_priority(SubjobRef { job: t1, index: 0 }, 2);
    b.set_priority(SubjobRef { job: t2, index: 1 }, 1);
    b.set_priority(SubjobRef { job: t1, index: 1 }, 1);
    b.set_priority(SubjobRef { job: t2, index: 0 }, 2);
    b.build().unwrap()
}

#[test]
fn cyclic_topology_rejected_by_one_pass_analyses() {
    let sys = cyclic_system();
    assert!(matches!(
        analyze_exact_spp(&sys, &AnalysisConfig::default()),
        Err(AnalysisError::CyclicDependency { .. })
    ));
    assert!(matches!(
        analyze_bounds(&sys, &AnalysisConfig::default()),
        Err(AnalysisError::CyclicDependency { .. })
    ));
    // …but the fixed-point extension handles it.
    assert!(analyze_with_loops(&sys, &AnalysisConfig::default(), 4).is_ok());
}

#[test]
fn missing_priorities_rejected() {
    let mut b = SystemBuilder::new();
    let p = b.add_processor("P1", SchedulerKind::Spp);
    b.add_job("T1", Time(10), periodic(10), vec![(p, Time(2))]);
    let sys = b.build().unwrap();
    assert!(matches!(
        analyze_exact_spp(&sys, &AnalysisConfig::default()),
        Err(AnalysisError::Model(ModelError::MissingPriority { .. }))
    ));
}

#[test]
fn short_horizon_is_conservative_never_optimistic() {
    // A schedulable system analyzed with an absurdly short horizon must be
    // reported unschedulable (instances unresolved), not schedulable.
    let mut b = SystemBuilder::new();
    let p = b.add_processor("P1", SchedulerKind::Spp);
    b.add_job("T1", Time(50), periodic(50), vec![(p, Time(10))]);
    let mut sys = b.build().unwrap();
    assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();

    let good = analyze_exact_spp(&sys, &AnalysisConfig::default()).unwrap();
    assert!(good.all_schedulable());

    let cramped = AnalysisConfig {
        arrival_window: Some(Time(200)),
        horizon: Some(Time(5)), // nothing can finish
        ..Default::default()
    };
    let r = analyze_exact_spp(&sys, &cramped).unwrap();
    assert!(!r.all_schedulable(), "truncation must fail closed");
    assert!(r.jobs[0].responses.iter().any(Option::is_none));
}

#[test]
fn fixpoint_budget_is_respected_and_sound() {
    let sys = cyclic_system();
    // One round is the information-free bound; more rounds only tighten.
    let r1 = analyze_with_loops(&sys, &AnalysisConfig::default(), 1).unwrap();
    let r8 = analyze_with_loops(&sys, &AnalysisConfig::default(), 8).unwrap();
    for (a, b) in r1.jobs.iter().zip(&r8.jobs) {
        if let (Some(x), Some(y)) = (a.e2e_bound, b.e2e_bound) {
            assert!(y <= x);
        }
    }
}

#[test]
fn empty_and_invalid_builders() {
    assert!(matches!(
        SystemBuilder::new().build(),
        Err(ModelError::NoJobs)
    ));

    let mut b = SystemBuilder::new();
    let _ = b.add_processor("P1", SchedulerKind::Spp);
    b.add_job("T1", Time(10), periodic(10), vec![]);
    assert!(matches!(b.build(), Err(ModelError::EmptyChain { .. })));
}

#[test]
fn zero_arrivals_job_is_trivially_schedulable() {
    let mut b = SystemBuilder::new();
    let p = b.add_processor("P1", SchedulerKind::Spp);
    let t = b.add_job(
        "ghost",
        Time(10),
        ArrivalPattern::Trace(vec![]),
        vec![(p, Time(5))],
    );
    b.set_priority(SubjobRef { job: t, index: 0 }, 1);
    let sys = b.build().unwrap();
    let cfg = AnalysisConfig {
        arrival_window: Some(Time(100)),
        ..Default::default()
    };
    let r = analyze_exact_spp(&sys, &cfg).unwrap();
    assert!(r.all_schedulable());
    assert!(r.jobs[0].responses.is_empty());
    assert_eq!(r.jobs[0].wcrt, Some(Time::ZERO));
}

//! Property-based end-to-end tests: random small systems, structural
//! invariants checked against the simulator and across analyses.

use bursty_rta::analysis::{analyze_bounds, analyze_exact_spp, AnalysisConfig};
use bursty_rta::curves::Time;
use bursty_rta::model::{ArrivalPattern, JobId, SchedulerKind, SystemBuilder, TaskSystem};
use bursty_rta::sim::{simulate, SimConfig};
use proptest::prelude::*;

/// Strategy: a random small distributed system.
///
/// 2–3 processors, 2–4 jobs of 1–3 hops each, arbitrary traces or periodic
/// patterns, strict per-processor priorities assigned by enumeration order.
fn arb_system(scheduler: SchedulerKind) -> impl Strategy<Value = TaskSystem> {
    let job = (
        prop::collection::vec((0usize..3, 1i64..12), 1..4), // chain (proc, exec)
        prop_oneof![
            (1i64..40).prop_map(|p| ArrivalPattern::Periodic {
                period: Time(p + 10),
                offset: Time::ZERO,
            }),
            prop::collection::vec(0i64..80, 1..5).prop_map(|mut ts| {
                ts.sort();
                ArrivalPattern::Trace(ts.into_iter().map(Time).collect())
            }),
        ],
        20i64..200, // deadline
    );
    prop::collection::vec(job, 2..5).prop_map(move |jobs| {
        let mut b = SystemBuilder::new();
        let procs = [
            b.add_processor("P1", scheduler),
            b.add_processor("P2", scheduler),
            b.add_processor("P3", scheduler),
        ];
        let mut ids = Vec::new();
        for (k, (chain, arrival, deadline)) in jobs.into_iter().enumerate() {
            // Avoid physical loops: route hops through distinct processors.
            let mut chain: Vec<(usize, i64)> = chain;
            chain.dedup_by_key(|(p, _)| *p);
            let hops: Vec<_> = chain
                .into_iter()
                .map(|(p, e)| (procs[p], Time(e)))
                .collect();
            ids.push(b.add_job(format!("T{k}"), Time(deadline), arrival, hops));
        }
        let _ = ids;
        b.build().unwrap()
    })
}

fn with_priorities(mut sys: TaskSystem) -> Option<TaskSystem> {
    use bursty_rta::model::priority::{assign_priorities, PriorityPolicy};
    assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).ok()?;
    Some(sys)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact SPP analysis equals simulation on arbitrary random systems
    /// whose dependency graph is acyclic.
    #[test]
    fn exact_equals_sim(sys in arb_system(SchedulerKind::Spp)) {
        let Some(sys) = with_priorities(sys) else { return Ok(()) };
        let cfg = AnalysisConfig { arrival_window: Some(Time(120)), ..Default::default() };
        let Ok(report) = analyze_exact_spp(&sys, &cfg) else {
            return Ok(()); // cyclic topology — out of scope here
        };
        let (window, horizon) = cfg.resolve(&sys);
        let sim = simulate(&sys, &SimConfig { window, horizon });
        for (k, jr) in report.jobs.iter().enumerate() {
            prop_assert_eq!(jr.responses.len(), sim.instances(JobId(k)));
            for m in 1..=sim.instances(JobId(k)) {
                prop_assert_eq!(jr.responses[m - 1], sim.response(JobId(k), m), "job {} m {}", k, m);
            }
        }
    }

    /// Departures never precede arrivals, and service stays within
    /// [0, min(t, workload)] — Definition-level invariants on every curve
    /// the exact analysis produces.
    #[test]
    fn curve_invariants(sys in arb_system(SchedulerKind::Spp)) {
        let Some(sys) = with_priorities(sys) else { return Ok(()) };
        let cfg = AnalysisConfig { arrival_window: Some(Time(120)), ..Default::default() };
        let Ok(report) = analyze_exact_spp(&sys, &cfg) else { return Ok(()) };
        for (i, r) in sys.all_subjobs().enumerate() {
            let c = &report.curves[i];
            let tau = sys.subjob(r).exec.ticks();
            for t in (0..=report.horizon.ticks()).step_by(7) {
                let t = Time(t);
                prop_assert!(c.departure.eval(t) <= c.arrival.eval(t), "dep>arr at {} for {}", t, r);
                let s = c.service.eval(t);
                prop_assert!(s >= 0 && s <= t.ticks().max(0));
                prop_assert!(s <= c.arrival.eval(t) * tau);
            }
        }
    }

    /// The bounds analysis is bounded-sane on SPNP: hop delays, when
    /// finite, are at least the hop execution time; e2e is their sum.
    #[test]
    fn bounds_structure(sys in arb_system(SchedulerKind::Spnp)) {
        let Some(sys) = with_priorities(sys) else { return Ok(()) };
        let cfg = AnalysisConfig { arrival_window: Some(Time(120)), ..Default::default() };
        let Ok(report) = analyze_bounds(&sys, &cfg) else { return Ok(()) };
        for (k, jb) in report.jobs.iter().enumerate() {
            let job = &sys.jobs()[k];
            let has_arrivals = !job.arrival.release_times(report.window).is_empty();
            for (j, d) in jb.hop_delays.iter().enumerate() {
                if let Some(d) = d {
                    if has_arrivals {
                        prop_assert!(*d >= job.subjobs[j].exec, "hop {} delay {} < exec", j, d);
                    }
                }
            }
            let sum: Option<Time> = jb.hop_delays.iter().try_fold(Time::ZERO, |a, d| d.map(|d| a + d));
            prop_assert_eq!(sum, jb.e2e_bound);
        }
    }
}

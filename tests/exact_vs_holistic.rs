//! The Section 5.2 comparative claims, as deterministic tests:
//!
//! * single-stage systems: SPP/Exact and SPP/S&L reach identical
//!   schedulability decisions ("for a single processor system, both
//!   methods predict the same response time");
//! * multi-stage systems: SPP/Exact admits whenever SPP/S&L does, and
//!   strictly more often over a seed sweep ("when the number of stages is
//!   more than one, SPP/Exact performs better").

use bursty_rta::analysis::holistic::analyze_holistic;
use bursty_rta::analysis::{analyze_exact_spp, AnalysisConfig};
use bursty_rta::model::jobshop::{generate, ShopArrivals, ShopConfig};
use bursty_rta::model::priority::{assign_priorities, PriorityPolicy};
use bursty_rta::model::SchedulerKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn shop(stages: usize, utilization: f64) -> ShopConfig {
    ShopConfig {
        stages,
        procs_per_stage: 2,
        n_jobs: 6,
        scheduler: SchedulerKind::Spp,
        utilization,
        arrivals: ShopArrivals::Periodic {
            deadline_factor: stages as f64,
        },
        x_min: 0.2,
        ticks_per_unit: 500,
    }
}

fn decisions(stages: usize, utilization: f64, seed: u64) -> (bool, bool, Vec<i64>, Vec<i64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sys = generate(&shop(stages, utilization), &mut rng).unwrap();
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    let cfg = AnalysisConfig::default();
    let exact = analyze_exact_spp(&sys, &cfg).unwrap();
    let hol = analyze_holistic(&sys, &cfg).unwrap();
    let exact_wcrt = exact
        .jobs
        .iter()
        .map(|j| j.wcrt.map_or(i64::MAX, |t| t.ticks()))
        .collect();
    let hol_bound = hol
        .jobs
        .iter()
        .map(|j| j.e2e_bound.map_or(i64::MAX, |t| t.ticks()))
        .collect();
    (
        exact.all_schedulable(),
        hol.all_schedulable(),
        exact_wcrt,
        hol_bound,
    )
}

#[test]
fn single_stage_methods_agree() {
    for seed in 0..50 {
        for util in [0.3, 0.6, 0.9] {
            let (e, h, ew, hw) = decisions(1, util, seed);
            assert_eq!(e, h, "seed {seed} util {util}: decisions differ");
            // Stronger: the per-job response predictions coincide.
            assert_eq!(ew, hw, "seed {seed} util {util}: responses differ");
        }
    }
}

#[test]
fn multi_stage_exact_dominates_holistic() {
    let mut exact_admits = 0u32;
    let mut holistic_admits = 0u32;
    for seed in 0..60 {
        for util in [0.5, 0.7, 0.9] {
            for stages in [2usize, 4] {
                let (e, h, ew, hw) = decisions(stages, util, seed);
                // Domination per draw: holistic admit ⇒ exact admit.
                if h {
                    assert!(
                        e,
                        "seed {seed} stages {stages} util {util}: holistic admitted, exact did not"
                    );
                }
                // Per-job: the holistic bound is never below the exact WCRT.
                for (x, y) in ew.iter().zip(&hw) {
                    assert!(y >= x, "holistic bound {y} < exact WCRT {x} (seed {seed})");
                }
                exact_admits += e as u32;
                holistic_admits += h as u32;
            }
        }
    }
    assert!(
        exact_admits > holistic_admits,
        "exact must be strictly better overall: {exact_admits} vs {holistic_admits}"
    );
}

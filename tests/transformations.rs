//! The paper's motivation (Introduction): classical approaches transform
//! non-periodic workloads into periodic ones — e.g. "(i) treating the
//! non-periodic jobs as periodic jobs with the minimum inter-arrival time
//! being the period" — and pay for it in pessimism. The direct analysis of
//! this library admits whatever the transformation admits, and strictly
//! more over a sweep.

use bursty_rta::analysis::{analyze_exact_spp, AnalysisConfig};
use bursty_rta::curves::Time;
use bursty_rta::model::priority::{assign_priorities, PriorityPolicy};
use bursty_rta::model::{ArrivalPattern, SchedulerKind, SystemBuilder, TaskSystem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A single-processor system with one bursty job and one periodic job.
fn system(bursty: ArrivalPattern, deadline: Time, exec: Time) -> TaskSystem {
    let mut b = SystemBuilder::new();
    let p = b.add_processor("P1", SchedulerKind::Spp);
    b.add_job("bursty", deadline, bursty, vec![(p, exec)]);
    b.add_job(
        "steady",
        Time(400),
        ArrivalPattern::Periodic {
            period: Time(100),
            offset: Time::ZERO,
        },
        vec![(p, Time(30))],
    );
    let mut sys = b.build().unwrap();
    assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
    sys
}

#[test]
fn sporadic_transformation_is_conservative_per_draw() {
    let window = Time(1_000);
    let cfg = AnalysisConfig {
        arrival_window: Some(window),
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(99);
    let mut direct_admits = 0u32;
    let mut transformed_admits = 0u32;
    for _ in 0..80 {
        // A random burst train: tight intra-burst spacing, long inter-burst
        // gaps — the worst inputs for the min-gap transformation.
        let intra = Time(rng.gen_range(5..40));
        let burst_len = rng.gen_range(2..5u32);
        let train = ArrivalPattern::BurstTrain {
            burst_len,
            intra_gap: intra,
            train_period: Time(rng.gen_range(300..600)),
            offset: Time::ZERO,
        };
        let deadline = Time(rng.gen_range(60..250));
        let exec = Time(rng.gen_range(5..25));

        let direct = analyze_exact_spp(&system(train.clone(), deadline, exec), &cfg)
            .unwrap()
            .all_schedulable();

        let env = train.sporadic_envelope(window).expect("has a min gap");
        assert_eq!(env, ArrivalPattern::SporadicEnvelope { min_gap: intra });
        let transformed = analyze_exact_spp(&system(env, deadline, exec), &cfg)
            .unwrap()
            .all_schedulable();

        // Conservative: the transformation never admits what the direct
        // analysis rejects.
        if transformed {
            assert!(
                direct,
                "transformation admitted a set the direct analysis rejects"
            );
        }
        direct_admits += direct as u32;
        transformed_admits += transformed as u32;
    }
    // …and it is strictly more pessimistic overall: the dense periodic
    // stand-in grossly over-counts long-run demand.
    assert!(
        direct_admits > transformed_admits,
        "direct {direct_admits} vs transformed {transformed_admits}"
    );
}

/// Transformation (ii): executing the bursty stream from a periodic server
/// reservation. The server makes the stream invisible to the rest of the
/// system but pays blackout latency: its response bound must dominate the
/// dedicated-processor response, shrink with budget, and approach the
/// dedicated case as the reservation approaches the whole processor.
#[test]
fn server_transformation_tradeoff() {
    use bursty_rta::analysis::server::PeriodicServer;
    use bursty_rta::curves::Curve;

    let window = Time(2_000);
    let horizon = Time(20_000);
    let tau = Time(30);
    let burst = ArrivalPattern::BurstTrain {
        burst_len: 3,
        intra_gap: Time(10),
        train_period: Time(700),
        offset: Time::ZERO,
    };
    let arr: Curve = burst.arrival_curve(window);

    // Dedicated processor: exact analysis of the stream alone.
    let mut b = SystemBuilder::new();
    let p = b.add_processor("P1", SchedulerKind::Spp);
    b.add_job("bursty", Time(10_000), burst.clone(), vec![(p, tau)]);
    let mut sys = b.build().unwrap();
    assign_priorities(&mut sys, PriorityPolicy::DeadlineMonotonic).unwrap();
    let cfg = AnalysisConfig {
        arrival_window: Some(window),
        horizon: Some(horizon),
        ..Default::default()
    };
    let dedicated = analyze_exact_spp(&sys, &cfg).unwrap().jobs[0].wcrt.unwrap();

    let mut prev: Option<Time> = None;
    for budget in [40i64, 80, 140, 200] {
        let srv = PeriodicServer::new(Time(200), Time(budget));
        let bound = srv
            .response_bound(&arr, tau, horizon)
            .expect("served within horizon");
        assert!(
            bound >= dedicated,
            "budget {budget}: server bound {bound} below dedicated {dedicated}"
        );
        if let Some(prev) = prev {
            assert!(bound <= prev, "bigger budget must not hurt");
        }
        prev = Some(bound);
    }
    // Full reservation = dedicated processor, exactly.
    let full = PeriodicServer::new(Time(200), Time(200))
        .response_bound(&arr, tau, horizon)
        .unwrap();
    assert_eq!(full, dedicated);
}

#[test]
fn transformed_wcrt_dominates_direct_wcrt() {
    let window = Time(1_000);
    let cfg = AnalysisConfig {
        arrival_window: Some(window),
        ..Default::default()
    };
    let train = ArrivalPattern::BurstTrain {
        burst_len: 3,
        intra_gap: Time(10),
        train_period: Time(500),
        offset: Time::ZERO,
    };
    let direct = analyze_exact_spp(&system(train.clone(), Time(400), Time(20)), &cfg).unwrap();
    let env = train.sporadic_envelope(window).unwrap();
    let transformed = analyze_exact_spp(&system(env, Time(400), Time(20)), &cfg).unwrap();
    let (d, t) = (direct.jobs[0].wcrt, transformed.jobs[0].wcrt);
    match (d, t) {
        (Some(d), Some(t)) => assert!(t >= d, "transformed WCRT {t:?} < direct {d:?}"),
        (Some(_), None) => {} // transformation even failed to bound it
        other => panic!("unexpected: {other:?}"),
    }
}

//! Cross-method and cross-crate invariants.

use bursty_rta::analysis::classic::{rta_uniprocessor, utilization, PeriodicTask};
use bursty_rta::analysis::{analyze_bounds, analyze_exact_spp, AnalysisConfig};
use bursty_rta::curves::Time;
use bursty_rta::model::jobshop::{generate, ShopArrivals, ShopConfig};
use bursty_rta::model::priority::{assign_priorities, PriorityPolicy};
use bursty_rta::model::{ArrivalPattern, SchedulerKind, SubjobRef, SystemBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// On a single SPP processor with synchronous periodic tasks and deadlines
/// within periods, the paper's exact analysis must reproduce the classical
/// Joseph & Pandya response times exactly.
#[test]
fn uniprocessor_exact_matches_classic_rta() {
    let mut rng = StdRng::seed_from_u64(7);
    for case in 0..200 {
        let n = rng.gen_range(2..6);
        // Random task set with utilization safely below 1.
        let mut tasks: Vec<PeriodicTask> = Vec::new();
        for _ in 0..n {
            let period = Time(rng.gen_range(20..200));
            let exec = Time(rng.gen_range(1..=(period.ticks() / (2 * n as i64)).max(1)));
            tasks.push(PeriodicTask { exec, period });
        }
        tasks.sort_by_key(|t| t.period); // rate monotonic order
        if utilization(&tasks) >= 1.0 {
            continue;
        }

        let mut b = SystemBuilder::new();
        let p = b.add_processor("P1", SchedulerKind::Spp);
        for (i, t) in tasks.iter().enumerate() {
            let id = b.add_job(
                format!("T{i}"),
                t.period * 4, // generous deadline; we compare responses
                ArrivalPattern::Periodic {
                    period: t.period,
                    offset: Time::ZERO,
                },
                vec![(p, t.exec)],
            );
            b.set_priority(SubjobRef { job: id, index: 0 }, i as u32 + 1);
        }
        let sys = b.build().unwrap();
        let report = analyze_exact_spp(&sys, &AnalysisConfig::default()).unwrap();
        for i in 0..tasks.len() {
            let classic = rta_uniprocessor(&tasks, i, Time(1_000_000)).unwrap();
            let ours = report.jobs[i].wcrt.unwrap();
            assert_eq!(
                ours, classic,
                "case {case} task {i}: {ours:?} vs classic {classic:?}"
            );
        }
    }
}

/// The Theorem 4 bounds can only over-approximate the exact analysis on the
/// same all-SPP system: per-job, bound ≥ exact WCRT.
#[test]
fn bounds_dominate_exact_on_spp_shops() {
    for seed in 0..40 {
        let cfg = ShopConfig {
            stages: 2,
            procs_per_stage: 2,
            n_jobs: 5,
            scheduler: SchedulerKind::Spp,
            utilization: 0.6,
            arrivals: ShopArrivals::Periodic {
                deadline_factor: 4.0,
            },
            x_min: 0.2,
            ticks_per_unit: 300,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sys = generate(&cfg, &mut rng).unwrap();
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        let acfg = AnalysisConfig::default();
        let exact = analyze_exact_spp(&sys, &acfg).unwrap();
        let bounds = analyze_bounds(&sys, &acfg).unwrap();
        for k in 0..sys.jobs().len() {
            if let (Some(e), Some(b)) = (exact.jobs[k].wcrt, bounds.jobs[k].e2e_bound) {
                assert!(b >= e, "seed {seed} job {k}: bound {b:?} < exact {e:?}");
            }
        }
    }
}

/// Admission must be monotone in the deadline: relaxing every deadline can
/// never turn a schedulable system unschedulable.
#[test]
fn admission_monotone_in_deadline() {
    for seed in 0..30 {
        let cfg = ShopConfig {
            stages: 2,
            procs_per_stage: 2,
            n_jobs: 5,
            scheduler: SchedulerKind::Spp,
            utilization: 0.8,
            arrivals: ShopArrivals::Periodic {
                deadline_factor: 1.5,
            },
            x_min: 0.2,
            ticks_per_unit: 300,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sys = generate(&cfg, &mut rng).unwrap();
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        let acfg = AnalysisConfig::default();
        let tight = analyze_exact_spp(&sys, &acfg).unwrap();
        let njobs = sys.jobs().len();
        // Rebuild with doubled deadlines and identical structure.
        let mut b = SystemBuilder::new();
        let procs: Vec<_> = sys
            .processors()
            .iter()
            .map(|p| b.add_processor(p.name.clone(), p.scheduler))
            .collect();
        for job in sys.jobs() {
            b.add_job(
                job.name.clone(),
                job.deadline * 2,
                job.arrival.clone(),
                job.subjobs
                    .iter()
                    .map(|s| (procs[s.processor.0], s.exec))
                    .collect(),
            );
        }
        let mut relaxed = b.build().unwrap();
        assign_priorities(&mut relaxed, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        let loose = analyze_exact_spp(&relaxed, &acfg).unwrap();
        for k in 0..njobs {
            if tight.jobs[k].schedulable() {
                assert!(
                    loose.jobs[k].schedulable(),
                    "seed {seed} job {k}: relaxing deadlines broke schedulability"
                );
            }
        }
    }
}

/// Heterogeneous systems (different schedulers per processor) analyze
/// without error and respect per-hop structure. Crossing routes close a
/// Section 6 "logical loop" through the FCFS stage; the one-pass bounds
/// detect it and the fixed-point extension resolves it.
#[test]
fn heterogeneous_smoke() {
    use bursty_rta::analysis::fixpoint::analyze_with_loops;
    use bursty_rta::analysis::AnalysisError;

    let build = |crossing: bool| {
        let mut b = SystemBuilder::new();
        let p1 = b.add_processor("P1", SchedulerKind::Spp);
        let p2 = b.add_processor("P2", SchedulerKind::Fcfs);
        let p3 = b.add_processor("P3", SchedulerKind::Spnp);
        b.add_job(
            "T1",
            Time(5_000),
            ArrivalPattern::Hyperbolic {
                x: 0.4,
                ticks_per_unit: 100,
            },
            vec![(p1, Time(20)), (p2, Time(30)), (p3, Time(25))],
        );
        let t2_route = if crossing {
            // T2 returns upstream through P1: a logical loop via FCFS P2.
            vec![(p2, Time(40)), (p1, Time(10))]
        } else {
            vec![(p2, Time(40)), (p3, Time(10))]
        };
        b.add_job(
            "T2",
            Time(2_000),
            ArrivalPattern::Periodic {
                period: Time(400),
                offset: Time::ZERO,
            },
            t2_route,
        );
        let mut sys = b.build().unwrap();
        assign_priorities(&mut sys, PriorityPolicy::RelativeDeadlineMonotonic).unwrap();
        sys
    };

    // Forward-only routing: one-pass bounds succeed.
    let sys = build(false);
    let r = analyze_bounds(&sys, &AnalysisConfig::default()).unwrap();
    assert_eq!(r.jobs[0].hop_delays.len(), 3);
    assert_eq!(r.jobs[1].hop_delays.len(), 2);
    for jb in &r.jobs {
        let sum: Option<Time> = jb
            .hop_delays
            .iter()
            .try_fold(Time::ZERO, |a, d| d.map(|d| a + d));
        assert_eq!(sum, jb.e2e_bound);
    }

    // Crossing routes: the logical loop is detected, then resolved.
    let looped = build(true);
    assert!(matches!(
        analyze_bounds(&looped, &AnalysisConfig::default()),
        Err(AnalysisError::CyclicDependency { .. })
    ));
    let fixed = analyze_with_loops(&looped, &AnalysisConfig::default(), 6).unwrap();
    assert_eq!(fixed.jobs.len(), 2);
}

//! Protocol properties: every request/response line form round-trips
//! through its grammar (`Display` ∘ `parse` = id), and the serve loop
//! answers junk with `ERR` — in order, without dying, and without wedging
//! the tenant sessions it serves.

use std::sync::Arc;

use bursty_rta::analysis::service::ServiceConfig;
use bursty_rta::curves::Time;
use bursty_rta::daemon::{serve, ShardedService};
use bursty_rta::model::ArrivalPattern;
use bursty_rta::proto::{Request, Response, WcdfpJobLine, WcdfpSpec};
use bursty_rta::textfmt::{HopSpec, JobDraft};
use proptest::prelude::*;

// ---- generators --------------------------------------------------------

fn arb_name() -> impl Strategy<Value = String> {
    (0u64..1_000_000).prop_map(|mut n| {
        let mut s = String::new();
        for _ in 0..4 {
            s.push((b'a' + (n % 26) as u8) as char);
            n /= 26;
        }
        s
    })
}

fn arb_arrival() -> impl Strategy<Value = ArrivalPattern> {
    prop_oneof![
        (1i64..100_000, 0i64..1000).prop_map(|(p, o)| ArrivalPattern::Periodic {
            period: Time(p),
            offset: Time(o),
        }),
        (1i64..100_000, 0i64..500, 0i64..500).prop_map(|(p, j, o)| {
            ArrivalPattern::PeriodicJitter {
                period: Time(p),
                jitter: Time(j),
                offset: Time(o),
            }
        }),
        (1u64..1000, 1i64..10_000).prop_map(|(x, tpu)| ArrivalPattern::Hyperbolic {
            x: x as f64 / 1000.0,
            ticks_per_unit: tpu,
        }),
        (1u64..20, 0i64..50, 1i64..10_000, 0i64..100).prop_map(|(len, gap, period, off)| {
            ArrivalPattern::BurstTrain {
                burst_len: len as u32,
                intra_gap: Time(gap),
                train_period: Time(period),
                offset: Time(off),
            }
        }),
        (1i64..10_000).prop_map(|g| ArrivalPattern::SporadicEnvelope { min_gap: Time(g) }),
        prop::collection::vec(0i64..10_000, 1..5).prop_map(|mut ts| {
            ts.sort_unstable();
            ArrivalPattern::Trace(ts.into_iter().map(Time).collect())
        }),
    ]
}

fn arb_hop() -> impl Strategy<Value = HopSpec> {
    (arb_name(), 1i64..1000, 0u64..3, 1u64..9).prop_map(|(processor, exec, tag, v)| HopSpec {
        processor,
        exec,
        priority: (tag == 1).then_some(v as u32),
        weight: (tag == 2).then_some(v as u32),
    })
}

fn arb_draft() -> impl Strategy<Value = JobDraft> {
    (
        arb_name(),
        1i64..1_000_000,
        arb_arrival(),
        prop::collection::vec(arb_hop(), 0..3),
    )
        .prop_map(|(name, deadline, arrival, hops)| JobDraft {
            name,
            deadline,
            arrival,
            hops,
        })
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (arb_name(), prop::collection::vec(arb_name(), 0..4)).prop_map(|(tenant, lines)| {
            Request::Load {
                tenant,
                system: lines
                    .iter()
                    .map(|n| format!("processor {n} spp"))
                    .collect::<Vec<_>>()
                    .join("\n"),
            }
        }),
        (arb_name(), arb_draft()).prop_map(|(tenant, job)| Request::Admit { tenant, job }),
        (arb_name(), arb_name()).prop_map(|(tenant, job)| Request::Remove { tenant, job }),
        (arb_name(), 0.001f64..1000.0)
            .prop_map(|(tenant, factor)| Request::Scale { tenant, factor }),
        (
            arb_name(),
            0.01f64..2.0,
            2.0f64..64.0,
            1u64..40,
            (1u64..10, 1u64..20, 1u64..12),
        )
            .prop_map(
                |(tenant, scale_lo, scale_hi, scale_steps, (blo, bspan, bsteps))| {
                    Request::Region {
                        tenant,
                        scale_lo,
                        scale_hi,
                        scale_steps: scale_steps as usize,
                        burst_lo: blo as u32,
                        burst_hi: (blo + bspan) as u32,
                        burst_steps: bsteps as usize,
                    }
                }
            ),
        arb_name().prop_map(|tenant| Request::Stats { tenant }),
        (arb_name(), arb_wcdfp_spec()).prop_map(|(tenant, spec)| Request::Wcdfp { tenant, spec }),
        arb_name().prop_map(|tenant| Request::Evict { tenant }),
        Just(Request::Ping),
    ]
}

fn arb_wcdfp_spec() -> impl Strategy<Value = WcdfpSpec> {
    prop_oneof![
        (1u64..1_000_000, 0u64..9999).prop_map(|(draws, seed)| WcdfpSpec::Fixed { draws, seed }),
        (0.0001f64..0.5, 1u64..1_000_000, 0u64..9999).prop_map(|(tolerance, max_draws, seed)| {
            WcdfpSpec::Adaptive {
                tolerance,
                max_draws,
                seed,
            }
        }),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (arb_name(), 0u64..9999, 0u64..50, any::<bool>(), 0u64..3).prop_map(
            |(tenant, generation, jobs, schedulable, ev)| Response::Loaded {
                tenant: tenant.clone(),
                generation,
                jobs: jobs as usize,
                schedulable,
                evicted: (ev == 1).then(|| format!("old{tenant}")),
            }
        ),
        (arb_name(), 0u64..9999, arb_name(), any::<bool>(), 0u64..50).prop_map(
            |(tenant, generation, job, admitted, jobs)| Response::Admitted {
                tenant,
                generation,
                job,
                admitted,
                jobs: jobs as usize,
            }
        ),
        (arb_name(), 0u64..9999, arb_name(), 0u64..50).prop_map(
            |(tenant, generation, job, jobs)| Response::Removed {
                tenant,
                generation,
                job,
                jobs: jobs as usize,
            }
        ),
        (arb_name(), 0u64..9999, 0.001f64..100.0, any::<bool>()).prop_map(
            |(tenant, generation, factor, schedulable)| Response::Scaled {
                tenant,
                generation,
                factor,
                schedulable,
            }
        ),
        (
            arb_name(),
            prop::collection::vec(0.01f64..64.0, 0..5),
            prop::collection::vec((1u64..30, 0u64..2, 0.01f64..64.0), 0..5),
        )
            .prop_map(|(tenant, scales, raw_rows)| Response::RegionMap {
                tenant,
                scales,
                rows: raw_rows
                    .into_iter()
                    .map(|(b, has, f)| (b as u32, (has == 1).then_some(f)))
                    .collect(),
            }),
        (
            (arb_name(), 0u64..9999, 0u64..50),
            (0u64..999, 0u64..999, 0u64..999),
            (0u64..999, 0u64..999, 0u64..999),
            (0u64..9999, 0u64..64),
        )
            .prop_map(
                |(
                    (tenant, generation, jobs),
                    (analyses, recomputed, reused),
                    (verdict_hits, verdict_misses, warm_starts),
                    (interned, tenants),
                )| Response::Stats {
                    tenant,
                    generation,
                    jobs: jobs as usize,
                    analyses,
                    recomputed,
                    reused,
                    verdict_hits,
                    verdict_misses,
                    warm_starts,
                    interned: interned as usize,
                    tenants: tenants as usize,
                }
            ),
        (
            arb_name(),
            0u64..1_000_000,
            any::<bool>(),
            prop::collection::vec((arb_name(), 0.0f64..1.0, 0.0f64..0.5, 0.5f64..1.0), 0..5),
        )
            .prop_map(|(tenant, draws, converged, raw)| Response::Wcdfp {
                tenant,
                draws,
                converged,
                jobs: raw
                    .into_iter()
                    .map(|(name, p, lo, hi)| WcdfpJobLine { name, p, lo, hi })
                    .collect(),
            }),
        (arb_name(), any::<bool>())
            .prop_map(|(tenant, existed)| Response::Evicted { tenant, existed }),
        Just(Response::Pong),
        arb_name().prop_map(|w| Response::Err {
            message: format!("something {w} failed"),
        }),
    ]
}

fn roundtrip_request(req: &Request) -> Request {
    let text = req.to_string();
    let mut lines = text.lines();
    let first = lines.next().expect("rendered request has a first line");
    let rest: Vec<String> = lines.map(str::to_string).collect();
    let mut idx = 0;
    Request::parse(first, || {
        let line = rest.get(idx).cloned();
        idx += 1;
        line
    })
    .unwrap_or_else(|e| panic!("re-parse failed for {text:?}: {e}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse(render(request)) == request` for every request form.
    #[test]
    fn request_lines_round_trip(req in arb_request()) {
        prop_assert_eq!(roundtrip_request(&req), req);
    }

    /// `parse(render(response)) == response` for every response form,
    /// floats included (shortest-repr `Display` inverts exactly).
    #[test]
    fn response_lines_round_trip(resp in arb_response()) {
        let line = resp.to_string();
        let back = Response::parse(&line)
            .unwrap_or_else(|e| panic!("re-parse failed for {line:?}: {e}"));
        prop_assert_eq!(back, resp);
    }
}

// ---- junk-input behaviour of the serve loop ----------------------------

fn serve_lines(input: &str) -> Vec<String> {
    let svc = Arc::new(ShardedService::new(ServiceConfig::default(), 2));
    let mut out = Vec::new();
    serve(&svc, input.as_bytes(), &mut out).expect("in-memory serve cannot fail");
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

#[test]
fn junk_gets_err_in_order_and_sessions_survive() {
    let input = "\
!!! garbage
PING
LOAD t 2
processor P1 spp
job A deadline 50 periodic 20 0 hop P1 5
FROB t
ADMIT t job B deadline 100 periodic 50 0 hop P1 3
ADMIT t job X deadline 100 periodic 50 0 hop P9 3
ADMIT t job C deadline 200 periodic 100 0 hop P1 1
";
    let lines = serve_lines(input);
    assert_eq!(lines.len(), 7, "one response per request: {lines:#?}");
    assert!(lines[0].starts_with("ERR "), "{}", lines[0]);
    assert_eq!(lines[1], "PONG");
    assert_eq!(lines[2], "OK LOAD t gen=1 jobs=1 verdict=schedulable");
    assert!(lines[3].starts_with("ERR "), "{}", lines[3]);
    assert_eq!(lines[4], "OK ADMIT t gen=2 job=B verdict=admitted jobs=2");
    assert!(
        lines[5].starts_with("ERR ") && lines[5].contains("P9"),
        "bad hop must name the unknown processor: {}",
        lines[5]
    );
    // The tenant session took more work after two failures — not wedged.
    assert_eq!(lines[6], "OK ADMIT t gen=3 job=C verdict=admitted jobs=3");
}

#[test]
fn truncated_load_payload_is_an_err_not_a_hang() {
    let lines = serve_lines("LOAD t 5\nprocessor P1 spp\n");
    assert_eq!(lines.len(), 1);
    assert!(
        lines[0].starts_with("ERR ") && lines[0].contains("truncated"),
        "{}",
        lines[0]
    );
}

#[test]
fn quit_flushes_pending_batch_and_stops() {
    let lines = serve_lines("PING\nQUIT\nPING\n");
    assert_eq!(lines, vec!["PONG".to_string()]);
}

#[test]
fn blank_lines_flush_batches_between_responses() {
    let lines = serve_lines("PING\n\nPING\nPING\n\n");
    assert_eq!(lines, vec!["PONG".to_string(); 3]);
}

#[test]
fn errors_never_leak_across_tenants() {
    // Tenant `a` takes junk and failing requests; tenant `b` must keep
    // serving correct verdicts from its warm session throughout.
    let input = "\
LOAD a 2
processor P1 spp
job A deadline 50 periodic 20 0 hop P1 5
LOAD b 2
processor Q1 spp
job B deadline 60 periodic 30 0 hop Q1 6
SCALE a nonsense
REMOVE a ghost
ADMIT b job C deadline 120 periodic 60 0 hop Q1 2
";
    let lines = serve_lines(input);
    assert_eq!(lines.len(), 5, "{lines:#?}");
    assert!(lines[0].starts_with("OK LOAD a "), "{}", lines[0]);
    assert!(lines[1].starts_with("OK LOAD b "), "{}", lines[1]);
    assert!(lines[2].starts_with("ERR "), "{}", lines[2]);
    assert!(lines[3].starts_with("ERR "), "{}", lines[3]);
    assert!(
        lines[4].starts_with("OK ADMIT b ") && lines[4].contains("verdict=admitted"),
        "{}",
        lines[4]
    );
}

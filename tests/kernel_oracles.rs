//! Property tests pinning the segment-native kernels to their lattice-scan
//! oracles: the general min-plus convolution vs the O(horizon²) tick scan,
//! cursor sweeps vs front-rescanning queries, and the Theorem-3 service
//! composition vs a brute-force evaluation of the min-form on the lattice.

use bursty_rta::analysis::spp::exact_service;
use bursty_rta::curves::convolution::{convolve, min_plus_convolve_lattice};
use bursty_rta::curves::{Curve, CurveCursor, Time};
use proptest::prelude::*;

/// A random bursty staircase: `n` event times in `[0, span)`, steps of
/// height `tau`. Non-convex in general — the hard case for the convolution.
fn arb_staircase(span: i64) -> impl Strategy<Value = Curve> {
    (prop::collection::vec(0i64..span, 1..8), 1i64..5).prop_map(|(mut ts, tau)| {
        ts.sort();
        Curve::from_event_times(&ts.into_iter().map(Time).collect::<Vec<_>>()).scale(tau)
    })
}

/// A random nondecreasing curve: a staircase, optionally clipped by a
/// random affine ceiling so sloped pieces appear too.
fn arb_monotone(span: i64) -> impl Strategy<Value = Curve> {
    (arb_staircase(span), 0i64..20, 0i64..4, any::<bool>()).prop_map(|(stairs, b, a, clip)| {
        if clip {
            stairs.min_with(&Curve::affine(b, a))
        } else {
            stairs
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The segment-native general convolution agrees with the lattice-scan
    /// oracle at every tick of the horizon.
    #[test]
    fn convolve_matches_lattice_oracle(
        f in arb_monotone(60),
        g in arb_monotone(60),
        h in 0i64..150,
    ) {
        let horizon = Time(h);
        let fast = convolve(&f, &g, horizon);
        let oracle = min_plus_convolve_lattice(&f, &g, horizon);
        for t in 0..=h {
            prop_assert_eq!(
                fast.eval(Time(t)),
                oracle.eval(Time(t)),
                "t={} f={:?} g={:?}", t, f, g
            );
        }
    }

    /// Cursor sweeps return exactly what the front-rescanning queries do,
    /// for both the pseudo-inverse and pointwise evaluation.
    #[test]
    fn cursor_matches_rescanning_queries(c in arb_monotone(80), ymax in 1i64..120) {
        let mut inv = CurveCursor::new(&c);
        for y in 0..=ymax {
            prop_assert_eq!(inv.inverse_at(y), c.inverse_at(y), "y={}", y);
        }
        let mut ev = CurveCursor::new(&c);
        for t in 0..=ymax {
            prop_assert_eq!(ev.eval(Time(t)), c.eval(Time(t)), "t={}", t);
        }
    }

    /// The segment-composed Theorem-3 service function equals the brute
    /// tick evaluation `min(c(t), min_s A(t) − A(s) + c(s⁻))` with the
    /// availability left over by a chain of higher-priority subjobs.
    #[test]
    fn exact_service_matches_tick_reference(
        work in arb_staircase(40),
        hp1 in arb_staircase(40),
        hp2 in arb_staircase(40),
    ) {
        let s1 = exact_service(&hp1, &[]);
        let s2 = exact_service(&hp2, &[&s1]);
        let hp = [&s1, &s2];
        let service = exact_service(&work, &hp);

        let horizon = 100i64;
        let avail = |t: i64| t - hp.iter().map(|s| s.eval(Time(t))).sum::<i64>();
        for t in 0..=horizon {
            let inner = (0..=t)
                .map(|s| {
                    let c_left = if s == 0 { 0 } else { work.eval(Time(s - 1)) };
                    avail(t) - avail(s) + c_left
                })
                .min()
                .unwrap();
            let expect = inner.min(work.eval(Time(t)));
            prop_assert_eq!(service.eval(Time(t)), expect, "t={}", t);
        }
    }
}

#!/usr/bin/env bash
# Full local gate: format, lints, tier-1 tests, and a performance snapshot.
#
#   scripts/check.sh           # everything
#   SKIP_BENCH=1 scripts/check.sh   # skip the perf snapshot (CI smoke)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test --workspace -q

echo "==> policy-kernel gates: conformance + golden equivalence"
cargo test -p rta-core --test policy_conformance -q
cargo test -p rta-core --test policy_golden -q

echo "==> SoA kernel gates: SoA results pinned segment-identical to AoS oracles"
cargo test -p rta-curves --test soa_kernels -q
cargo test -p rta-core --lib -q soa_chain_matches_aos_oracle

# The sim crate builds in two configurations: trace-off (how `-p rta-sim`
# and the bench binaries see it — the gated hot path) and trace-on (how
# the root package sees it — full trace capture). The workspace clippy and
# test runs above cover trace-on; cover trace-off explicitly, plus the
# event-core gates in both.
echo "==> sim trace-off config: clippy + tests"
cargo clippy -p rta-sim --all-targets -- -D warnings
cargo test -p rta-sim -q

echo "==> sim gates: legacy-oracle equivalence + replay determinism (trace on)"
cargo test -p rta-sim --features trace --test oracle --test determinism --test agreement -q

echo "==> WCDFP gates: pool-merge bit-identity + adaptive consistency + 2k-draw golden smoke (release)"
cargo test -p rta-sim --release --test wcdfp -q

echo "==> admission daemon smoke: canned stream vs golden responses"
scripts/service_smoke.sh

echo "==> service soak + alloc budget gates (alloc_stats, release)"
cargo test -p rta-bench --features alloc_stats --release --test service_soak -q
cargo test -p rta-bench --features alloc_stats --release --test alloc_budget -q

if [[ "${SKIP_BENCH:-0}" != "1" ]]; then
    # Stash the committed baselines before perf_snapshot overwrites them,
    # then gate: fail if any benchmark regressed by more than 25%.
    basedir="$(mktemp -d)"
    trap 'rm -rf "$basedir"' EXIT
    for f in BENCH_curves.json BENCH_incremental.json BENCH_sim.json BENCH_service.json \
             BENCH_wcdfp.json; do
        [[ -f "$f" ]] && cp "$f" "$basedir/$f"
    done

    echo "==> perf snapshot (writes BENCH_curves.json, BENCH_incremental.json)"
    cargo run -p rta-bench --release --bin perf_snapshot

    echo "==> sim snapshot (writes BENCH_sim.json)"
    cargo run -p rta-bench --release --bin sim_snapshot

    echo "==> WCDFP snapshot (writes BENCH_wcdfp.json; asserts <= 10 us/draw verdict-only)"
    cargo run -p rta-bench --release --bin wcdfp_snapshot

    echo "==> service load generator (writes BENCH_service.json; floor 10k req/s)"
    cargo run --release --bin load_gen

    # The 1024-point inverse-sweep rows swing with machine-wide speed
    # shifts well beyond the 25% budget; they are gated on their *ratio*
    # to the stable same-kernel 128-point siblings below instead, and
    # skipped in the absolute comparison.
    for f in BENCH_curves.json BENCH_incremental.json BENCH_sim.json BENCH_service.json \
             BENCH_wcdfp.json; do
        if [[ -f "$basedir/$f" ]]; then
            skips=()
            if [[ "$f" == BENCH_curves.json ]]; then
                skips=(--skip inverse_sweep/rescan/1024 --skip inverse_sweep/cursor/1024)
            fi
            echo "==> bench gate: $f vs committed baseline (max +25%)"
            cargo run -p rta-bench --release --bin bench_gate -- "$basedir/$f" "$f" 25 "${skips[@]}"
        fi
    done

    if [[ -f "$basedir/BENCH_curves.json" ]]; then
        echo "==> bench gate: inverse-sweep 1024-point rows vs 128-point siblings (ratio)"
        cargo run -p rta-bench --release --bin bench_gate -- \
            --ratio "$basedir/BENCH_curves.json" BENCH_curves.json \
            inverse_sweep/rescan/1024 inverse_sweep/rescan/128 25
        cargo run -p rta-bench --release --bin bench_gate -- \
            --ratio "$basedir/BENCH_curves.json" BENCH_curves.json \
            inverse_sweep/cursor/1024 inverse_sweep/cursor/128 25
    fi

    # Layout parity: the SoA kernel rows must not fall behind their
    # retained AoS oracles (15% grace for run-to-run noise).
    echo "==> bench gate: SoA-vs-AoS kernel pairs"
    cargo run -p rta-bench --release --bin bench_gate -- \
        --pair BENCH_curves.json soa/linear_combine/256 aos/linear_combine/256 15
    cargo run -p rta-bench --release --bin bench_gate -- \
        --pair BENCH_curves.json soa/pointwise_min/256 aos/pointwise_min/256 15
fi

echo "OK"

#!/usr/bin/env bash
# Full local gate: format, lints, tier-1 tests, and a performance snapshot.
#
#   scripts/check.sh           # everything
#   SKIP_BENCH=1 scripts/check.sh   # skip the perf snapshot (CI smoke)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test --workspace -q

if [[ "${SKIP_BENCH:-0}" != "1" ]]; then
    echo "==> perf snapshot (writes BENCH_curves.json)"
    cargo run -p rta-bench --release --bin perf_snapshot
fi

echo "OK"

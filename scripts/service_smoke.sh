#!/usr/bin/env bash
# Daemon smoke test: replay a canned request stream through the resident
# admission service (`rta-admit --serve`) and diff the responses against
# the committed golden. Everything in the stream is algorithmic —
# generations, verdicts, region frontiers, stats counters — so the output
# is byte-stable; any drift is a protocol or analysis change that must be
# reviewed (and the golden regenerated deliberately):
#
#   target/release/rta-admit --serve \
#       < tests/data/service_stream.txt > tests/data/service_stream.golden
set -euo pipefail
cd "$(dirname "$0")/.."

bin=target/release/rta-admit
if [[ ! -x "$bin" ]]; then
    cargo build --release --bin rta-admit
fi

out="$(mktemp)"
trap 'rm -f "$out"' EXIT
"$bin" --serve < tests/data/service_stream.txt > "$out"
diff -u tests/data/service_stream.golden "$out"
echo "service smoke OK ($(wc -l < "$out") responses matched)"
